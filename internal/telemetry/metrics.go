package telemetry

// Domain metric bundles: the enumeration engines and the operational
// machine each get a struct of pre-registered metrics with nil-safe
// event methods, so the instrumented packages never touch the registry
// and a nil bundle is a complete no-op.

// Candidate-set sizes are tiny (the paper's candidates(L) is usually
// 1–4 stores); checkpoint latencies span µs to seconds.
var (
	candidateBounds  = []int64{0, 1, 2, 3, 4, 6, 8, 16}
	latencyNsBounds  = []int64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}
	frontierLogScale = []int64{1, 4, 16, 64, 256, 1024, 4096, 16384}
	worklistBounds   = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	// Per-state quiescence runs sub-µs to ms, an order finer than the
	// checkpoint/shard latency scale.
	stateNsBounds = []int64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}
)

// EnumMetrics instruments the enumeration engines (sequential and
// work-stealing). All methods are nil-safe; shard is the worker index
// (0 for the sequential engine).
type EnumMetrics struct {
	reg *Registry

	Explored   *Counter
	Forks      *Counter
	PoolHits   *Counter
	PoolMisses *Counter
	DedupHits  *Counter
	Collisions *Counter
	Rollbacks  *Counter
	Steals     *Counter
	Behaviors  *Counter

	// Search-pruning instrumentation: forks killed at fork time by the
	// prefix/symmetry seen-set, candidate scans skipped by the
	// eligibility cache, and incremental-closure worklist sizes.
	PrunePrefix   *Counter
	PruneSymmetry *Counter
	DirtySkips    *Counter
	WorklistLen   *Histogram

	// Fork-elision instrumentation: candidate children evaluated by
	// trial-applying the resolution on the parent and never queued
	// (ChildrenElided), and the subset whose trial was undone because the
	// resolution or closure failed (TrialRollbacks).
	ChildrenElided *Counter
	TrialRollbacks *Counter

	// Path-compressed frontier instrumentation: queued states demoted to
	// compressed replay paths, and the resident frontier bytes (live and
	// high-water) the demotion budget governs.
	FrontierDemoted      *Counter
	FrontierResident     *Gauge
	FrontierResidentPeak *Gauge

	// Copy-on-write fork instrumentation: closure rows adopted by
	// reference at fork time vs copied on first write, slab arena bytes
	// allocated, and retired states the pool dropped for pinning an
	// oversized arena. Folded from the graph layer's per-family counters
	// at end of run (internal/graph stays telemetry-free).
	CowRowsShared *Counter
	CowRowsCopied *Counter
	SlabBytes     *Counter
	PoolDrops     *Counter

	// Tiered-dedup spill instrumentation: sorted fingerprint runs
	// flushed to disk by a budgeted seen-set, and cold lookups that had
	// to probe them. The gauges expose the tier's live shape — run
	// files on disk, merge compactions, and resident-vs-budget bytes —
	// so a spilling run can be watched, not just post-mortemed.
	SpillRuns        *Counter
	SpillProbes      *Counter
	SpillCompactions *Counter
	DedupRunFiles    *Gauge
	DedupResident    *Gauge
	DedupBudget      *Gauge

	// Phase-time counters map to Section 4 of the paper: graph
	// generation (step 1), dataflow execution + atomicity closure
	// (step 2), and Load Resolution forking (step 3).
	GenerateNs *Counter
	ExecuteNs  *Counter
	ResolveNs  *Counter

	Frontier     *Gauge
	Workers      *Gauge
	Candidates   *Histogram
	FrontierHist *Histogram
	CheckpointNs *Histogram
	// StateNs is the per-state settle latency (one work item's
	// quiescence pass) — its exported quantiles are the engine's tail
	// latency in BENCH_enum.json.
	StateNs *Histogram
}

// NewEnumMetrics registers the enumeration metric set on reg (a private
// registry when reg is nil). Returns nil when telemetry is compiled out.
func NewEnumMetrics(reg *Registry) *EnumMetrics {
	if !Enabled {
		return nil
	}
	if reg == nil {
		reg = NewRegistry()
	}
	m := &EnumMetrics{reg: reg}
	m.Explored = reg.NewCounter("enum_states_explored_total", "behaviors removed from the work set")
	m.Forks = reg.NewCounter("enum_forks_total", "child states materialized and queued (pruned, rolled-back, and leaf-elided candidates never fork)")
	m.PoolHits = reg.NewCounter("enum_pool_hits_total", "forks served from a recycled state")
	m.PoolMisses = reg.NewCounter("enum_pool_misses_total", "forks that allocated a fresh state")
	m.DedupHits = reg.NewCounter("enum_dedup_hits_total", "forks dropped by Load-Store-graph dedup")
	m.Collisions = reg.NewCounter("enum_dedup_collisions_total", "distinct signatures seen behind one fingerprint (signature guard; dedupcheck builds)")
	m.Rollbacks = reg.NewCounter("enum_rollbacks_total", "behaviors discarded as inconsistent")
	m.Steals = reg.NewCounter("enum_steals_total", "work items stolen from another worker's deque")
	m.Behaviors = reg.NewCounter("enum_behaviors_total", "distinct final executions recorded")
	m.PrunePrefix = reg.NewCounter("prune_prefix_hits", "forks dropped at fork time by prefix-state dedup")
	m.PruneSymmetry = reg.NewCounter("prune_symmetry_hits", "forks dropped at fork time by symmetry canonicalization")
	m.DirtySkips = reg.NewCounter("candidates_dirty_skips", "eligibility checks served from the per-load dirty-bit cache")
	m.CowRowsShared = reg.NewCounter("graph_cow_rows_shared_total", "closure rows adopted by reference at fork time")
	m.CowRowsCopied = reg.NewCounter("graph_cow_rows_copied_total", "closure rows copied into a writer's slab on first write")
	m.SlabBytes = reg.NewCounter("graph_slab_bytes_total", "bytes allocated to slab arenas")
	m.PoolDrops = reg.NewCounter("enum_pool_drops_total", "retired states dropped for pinning an oversized slab arena")
	m.WorklistLen = reg.NewHistogramMetric("closure_worklist_len", "incremental-closure worklist size per pass", worklistBounds)
	m.ChildrenElided = reg.NewCounter("enum_children_elided_total", "candidate children evaluated in place on the parent and never queued")
	m.TrialRollbacks = reg.NewCounter("enum_trial_rollbacks_total", "trial applications undone in place (failed resolution or closure)")
	m.FrontierDemoted = reg.NewCounter("frontier_demoted_total", "queued states demoted to compressed replay paths")
	m.FrontierResident = reg.NewGauge("frontier_resident_bytes", "bytes of fully materialized states on the work queues")
	m.FrontierResidentPeak = reg.NewGauge("frontier_resident_peak_bytes", "high-water mark of frontier_resident_bytes this run")
	m.SpillRuns = reg.NewCounter("enum_dedup_spill_runs_total", "sorted fingerprint runs flushed to disk by a budgeted seen-set")
	m.SpillProbes = reg.NewCounter("enum_dedup_spill_probes_total", "dedup lookups that missed the hot tier and probed on-disk runs")
	m.SpillCompactions = reg.NewCounter("enum_dedup_compactions_total", "loser-tree merges of on-disk runs triggered by the run-count cap")
	m.DedupRunFiles = reg.NewGauge("enum_dedup_runfiles", "on-disk sorted runs currently live in the spill tier")
	m.DedupResident = reg.NewGauge("enum_dedup_resident_bytes", "estimated bytes resident in the hot dedup tier")
	m.DedupBudget = reg.NewGauge("enum_dedup_budget_bytes", "configured dedup memory budget (0 = unbudgeted)")
	m.GenerateNs = reg.NewCounter("enum_phase_generate_ns_total", "time in graph generation (Section 4 step 1)")
	m.ExecuteNs = reg.NewCounter("enum_phase_execute_ns_total", "time in dataflow execution + closure (step 2)")
	m.ResolveNs = reg.NewCounter("enum_phase_resolve_ns_total", "time in Load Resolution forking (step 3)")
	m.Frontier = reg.NewGauge("enum_frontier_depth", "behaviors currently queued or in flight")
	m.Workers = reg.NewGauge("enum_workers", "engine worker count of the most recent run")
	m.Candidates = reg.NewHistogramMetric("enum_candidates", "candidates(L) set-size distribution", candidateBounds)
	m.FrontierHist = reg.NewHistogramMetric("enum_frontier", "frontier depth sampled per state", frontierLogScale)
	m.CheckpointNs = reg.NewHistogramMetric("enum_checkpoint_ns", "checkpoint write latency", latencyNsBounds)
	m.StateNs = reg.NewHistogramMetric("enum_state_ns", "per-state quiescence latency", stateNsBounds)
	return m
}

// Registry returns the registry backing the bundle (nil-safe).
func (m *EnumMetrics) Registry() *Registry {
	if !Enabled || m == nil {
		return nil
	}
	return m.reg
}

// Snapshot flattens the bundle's registry (nil-safe).
func (m *EnumMetrics) Snapshot() Snapshot {
	if !Enabled || m == nil {
		return nil
	}
	return m.reg.Snapshot()
}

// MachineMetrics instruments the operational machine and the coherence
// bus. All methods are nil-safe; the simulator is single-threaded per
// run, so everything lands on shard 0 (atomics keep concurrent sweeps
// safe regardless).
type MachineMetrics struct {
	reg *Registry

	Steps  *Counter
	Stalls *Counter
	Runs   *Counter

	BusOps        *Counter
	ReadHits      *Counter
	ReadMisses    *Counter
	Invalidations *Counter
	Writebacks    *Counter

	FaultDelays   *Counter
	FaultReorders *Counter
	FaultRetries  *Counter
	FaultStalls   *Counter
}

// NewMachineMetrics registers the machine/coherence metric set on reg (a
// private registry when reg is nil). Returns nil when telemetry is
// compiled out.
func NewMachineMetrics(reg *Registry) *MachineMetrics {
	if !Enabled {
		return nil
	}
	if reg == nil {
		reg = NewRegistry()
	}
	m := &MachineMetrics{reg: reg}
	m.Steps = reg.NewCounter("machine_steps_total", "instructions issued")
	m.Stalls = reg.NewCounter("machine_stalls_total", "scheduler steps burned by fault-stalled instructions")
	m.Runs = reg.NewCounter("machine_runs_total", "completed simulation runs")
	m.BusOps = reg.NewCounter("coherence_bus_ops_total", "bus transactions raised")
	m.ReadHits = reg.NewCounter("coherence_read_hits_total", "loads served from a local S/M copy")
	m.ReadMisses = reg.NewCounter("coherence_read_misses_total", "loads that raised a bus read")
	m.Invalidations = reg.NewCounter("coherence_invalidations_total", "copies killed by remote writes")
	m.Writebacks = reg.NewCounter("coherence_writebacks_total", "M copies flushed to memory")
	m.FaultDelays = reg.NewCounter("coherence_fault_delays_total", "transactions hit by an injected stall")
	m.FaultReorders = reg.NewCounter("coherence_fault_reorders_total", "transactions deferred behind another bus op")
	m.FaultRetries = reg.NewCounter("coherence_fault_retries_total", "NACKed ownership transfers")
	m.FaultStalls = reg.NewCounter("coherence_fault_stall_cycles_total", "scheduler steps burned by injected faults")
	return m
}

// Registry returns the registry backing the bundle (nil-safe).
func (m *MachineMetrics) Registry() *Registry {
	if !Enabled || m == nil {
		return nil
	}
	return m.reg
}

// Snapshot flattens the bundle's registry (nil-safe).
func (m *MachineMetrics) Snapshot() Snapshot {
	if !Enabled || m == nil {
		return nil
	}
	return m.reg.Snapshot()
}

// DistMetrics instruments the distributed coordinator/worker layer:
// shard leasing, heartbeat traffic, the retry/backoff discipline, and
// the fingerprint exchange. Coordinator and worker each hold their own
// bundle; all methods are nil-safe.
type DistMetrics struct {
	reg *Registry

	ShardsDone    *Counter
	LeasesGranted *Counter
	LeasesExpired *Counter
	Retries       *Counter
	Heartbeats    *Counter
	Fingerprints  *Counter
	Duplicates    *Counter

	ShardsTotal *Gauge
	WorkersLive *Gauge

	ShardNs *Histogram
}

// NewDistMetrics registers the distributed metric set on reg (a private
// registry when reg is nil). Returns nil when telemetry is compiled out.
func NewDistMetrics(reg *Registry) *DistMetrics {
	if !Enabled {
		return nil
	}
	if reg == nil {
		reg = NewRegistry()
	}
	m := &DistMetrics{reg: reg}
	m.ShardsDone = reg.NewCounter("dist_shards_done_total", "shards completed and accepted by the coordinator")
	m.LeasesGranted = reg.NewCounter("dist_leases_granted_total", "shard leases handed to workers")
	m.LeasesExpired = reg.NewCounter("dist_leases_expired_total", "leases returned to the queue by expiry or a lost worker")
	m.Retries = reg.NewCounter("dist_retries_total", "worker->coordinator calls retried after a transport or server error")
	m.Heartbeats = reg.NewCounter("dist_heartbeats_total", "heartbeats processed")
	m.Fingerprints = reg.NewCounter("dist_fingerprints_total", "dedup fingerprints exchanged between shards")
	m.Duplicates = reg.NewCounter("dist_duplicate_results_total", "shard completions rejected as duplicates (idempotent resubmission)")
	m.ShardsTotal = reg.NewGauge("dist_shards", "shards in this run's partition")
	m.WorkersLive = reg.NewGauge("dist_workers_live", "workers currently registered and heartbeating")
	m.ShardNs = reg.NewHistogramMetric("dist_shard_ns", "per-shard lease-to-completion latency", latencyNsBounds)
	return m
}

// Registry returns the registry backing the bundle (nil-safe).
func (m *DistMetrics) Registry() *Registry {
	if !Enabled || m == nil {
		return nil
	}
	return m.reg
}

// Snapshot flattens the bundle's registry (nil-safe).
func (m *DistMetrics) Snapshot() Snapshot {
	if !Enabled || m == nil {
		return nil
	}
	return m.reg.Snapshot()
}

// ServeMetrics instruments the enumeration service's memo cache and
// write-behind journal (internal/serve). The serve package keeps its
// authoritative counters as plain atomics so /status survives -tags
// notelemetry; this bundle is the mirror that folds them into a
// registry for -metrics-addr scrapers. All methods are nil-safe.
type ServeMetrics struct {
	reg *Registry

	Hits      *Counter
	Misses    *Counter
	Coalesced *Counter
	Evictions *Gauge
	Entries   *Gauge
	Bytes     *Gauge
	Rejected  *Counter

	JournalWrites *Gauge
	JournalCalls  *Gauge

	HitNs  *Histogram
	MissNs *Histogram
}

// NewServeMetrics registers the serve metric set on reg (a private
// registry when reg is nil). Returns nil when telemetry is compiled out.
func NewServeMetrics(reg *Registry) *ServeMetrics {
	if !Enabled {
		return nil
	}
	if reg == nil {
		reg = NewRegistry()
	}
	m := &ServeMetrics{reg: reg}
	m.Hits = reg.NewCounter("serve_cache_hits_total", "requests answered from the memo cache")
	m.Misses = reg.NewCounter("serve_cache_misses_total", "requests that enumerated (or led a flight)")
	m.Coalesced = reg.NewCounter("serve_cache_coalesced_total", "requests that rode another request's in-flight enumeration")
	m.Rejected = reg.NewCounter("serve_rejected_total", "requests refused by admission control (429)")
	m.Evictions = reg.NewGauge("serve_cache_evictions", "entries evicted by the LRU byte budget")
	m.Entries = reg.NewGauge("serve_cache_entries", "entries resident in the memo cache")
	m.Bytes = reg.NewGauge("serve_cache_bytes", "bytes resident in the memo cache")
	m.JournalWrites = reg.NewGauge("serve_journal_logical_writes", "cache entries handed to the write-behind journal")
	m.JournalCalls = reg.NewGauge("serve_journal_db_calls", "file writes the journal actually issued (batching ratio denominator)")
	m.HitNs = reg.NewHistogramMetric("serve_hit_ns", "cache-hit response latency", latencyNsBounds)
	m.MissNs = reg.NewHistogramMetric("serve_miss_ns", "cache-miss (full enumeration) response latency", latencyNsBounds)
	return m
}

// ObserveHit records a cache-hit response (nil-safe).
func (m *ServeMetrics) ObserveHit(ns int64) {
	if !Enabled || m == nil {
		return
	}
	m.Hits.Inc(0)
	m.HitNs.Observe(ns)
}

// ObserveMiss records a full-enumeration response (nil-safe).
func (m *ServeMetrics) ObserveMiss(ns int64) {
	if !Enabled || m == nil {
		return
	}
	m.Misses.Inc(0)
	m.MissNs.Observe(ns)
}

// Coalesce records a request served by riding another's flight.
func (m *ServeMetrics) Coalesce() {
	if !Enabled || m == nil {
		return
	}
	m.Coalesced.Inc(0)
}

// Reject records an admission-control refusal.
func (m *ServeMetrics) Reject() {
	if !Enabled || m == nil {
		return
	}
	m.Rejected.Inc(0)
}

// SetCacheState mirrors the cache's point-in-time shape (nil-safe).
func (m *ServeMetrics) SetCacheState(evictions, entries, bytes int64) {
	if !Enabled || m == nil {
		return
	}
	m.Evictions.Set(evictions)
	m.Entries.Set(entries)
	m.Bytes.Set(bytes)
}

// SetJournalState mirrors the journal's write counters (nil-safe).
func (m *ServeMetrics) SetJournalState(logicalWrites, dbCalls int64) {
	if !Enabled || m == nil {
		return
	}
	m.JournalWrites.Set(logicalWrites)
	m.JournalCalls.Set(dbCalls)
}

// Registry returns the registry backing the bundle (nil-safe).
func (m *ServeMetrics) Registry() *Registry {
	if !Enabled || m == nil {
		return nil
	}
	return m.reg
}

// fleetKeys maps each dist_fleet_* gauge to the worker-snapshot key it
// sums. The set is the live-view core of the engine counters — enough
// to spot a hot shard or a stalled worker without scraping N processes.
var fleetKeys = []struct{ gauge, snap string }{
	{"dist_fleet_states_explored", "enum_states_explored_total"},
	{"dist_fleet_forks", "enum_forks_total"},
	{"dist_fleet_behaviors", "enum_behaviors_total"},
	{"dist_fleet_dedup_hits", "enum_dedup_hits_total"},
	{"dist_fleet_spill_runs", "enum_dedup_spill_runs_total"},
	{"dist_fleet_retries", "dist_retries_total"},
}

// FleetMetrics is the coordinator-side aggregation of worker metric
// snapshots piggybacked on heartbeats: each series is the sum over the
// live fleet, re-set on every aggregation pass (gauges, not counters —
// a lost worker's contribution ages out with it). All methods nil-safe.
type FleetMetrics struct {
	reg    *Registry
	gauges []*Gauge
	// Workers tracks how many snapshots fed the last aggregation.
	Workers *Gauge
}

// NewFleetMetrics registers the dist_fleet_* series on reg (a private
// registry when reg is nil). Returns nil when telemetry is compiled out.
func NewFleetMetrics(reg *Registry) *FleetMetrics {
	if !Enabled {
		return nil
	}
	if reg == nil {
		reg = NewRegistry()
	}
	m := &FleetMetrics{reg: reg}
	for _, k := range fleetKeys {
		m.gauges = append(m.gauges, reg.NewGauge(k.gauge, "fleet-wide sum of "+k.snap+" over live workers' heartbeat snapshots"))
	}
	m.Workers = reg.NewGauge("dist_fleet_snapshot_workers", "live workers whose snapshots fed the last aggregation")
	return m
}

// Update recomputes every fleet series from the live workers'
// snapshots. Nil-safe; nil or empty snapshots zero the series.
func (m *FleetMetrics) Update(snaps []Snapshot) {
	if !Enabled || m == nil {
		return
	}
	for i, k := range fleetKeys {
		var sum int64
		for _, s := range snaps {
			sum += s[k.snap]
		}
		m.gauges[i].Set(sum)
	}
	m.Workers.Set(int64(len(snaps)))
}

// Registry returns the registry backing the bundle (nil-safe).
func (m *FleetMetrics) Registry() *Registry {
	if !Enabled || m == nil {
		return nil
	}
	return m.reg
}
