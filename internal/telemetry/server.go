package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Serve exposes a registry over HTTP:
//
//	/metrics              Prometheus text exposition (version 0.0.4)
//	/debug/vars           expvar JSON (includes the registry snapshot
//	                      under the "storeatomicity" key)
//	/debug/pprof/...      net/http/pprof (profile, heap, trace, ...)
//
// addr is a listen address ("127.0.0.1:0" picks a free port; Addr()
// reports it). The server runs until Close.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// published lets the process-wide expvar hook follow the most recent
// registry: expvar.Publish panics on duplicate names, so the name is
// registered once and the pointer swapped per Serve call.
var (
	published   atomic.Pointer[Registry]
	publishOnce sync.Once
)

// Serve starts the telemetry HTTP server on addr for reg.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	published.Store(reg)
	publishOnce.Do(func() {
		expvar.Publish("storeatomicity", expvar.Func(func() any {
			return published.Load().Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (with the resolved port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down. In-flight scrapes get a short grace
// period via the listener close; the profiling endpoints hold no state.
func (s *Server) Close() error {
	s.srv.SetKeepAlivesEnabled(false)
	return s.srv.Close()
}

// Hold keeps the server alive for d (used by the CLI's -metrics-hold so
// a scraper can collect the final snapshot after a fast run exits its
// main loop).
func (s *Server) Hold(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
