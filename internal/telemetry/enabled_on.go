//go:build !notelemetry

package telemetry

// Enabled reports whether telemetry is compiled in. The default build
// carries the instrumentation (a nil-check per event when disabled at
// runtime); `-tags notelemetry` sets this to false, constant-folding
// every metric and trace call to nothing — the baseline build the CI
// overhead guard compares against.
const Enabled = true
