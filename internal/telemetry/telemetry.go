// Package telemetry is the zero-dependency observability layer of the
// reproduction: atomic counters, gauges, and bucketed histograms for the
// enumeration engines and the operational machine, a span-style tracer
// that exports Chrome trace_event JSON (chrome://tracing), an HTTP
// server exposing expvar + Prometheus text exposition + net/http/pprof,
// and a live stderr progress line for long enumerations.
//
// Every metric type is nil-safe: calling any method on a nil *Counter,
// *Gauge, *Histogram, *EnumMetrics, *MachineMetrics, or *Tracer is a
// no-op, so the engines instrument unconditionally and a disabled run
// (nil Options.Metrics) pays only a predictable nil-check branch on the
// hot path. Builds with `-tags notelemetry` compile the instrumentation
// out entirely (Enabled = false, constant-folded), which is the baseline
// the CI overhead guard measures against.
//
// Counters are sharded across padded cache lines and indexed by worker,
// so the work-stealing engine's workers never contend on a metric write;
// Value() folds the shards. Gauges are single atomics (last write wins).
// Histograms use fixed upper-bound buckets with atomic counts, exported
// in Prometheus cumulative-bucket form.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Shards is the counter shard count. Worker indexes are folded with
// `idx & (Shards-1)`; 32 padded shards keep false sharing negligible at
// any realistic worker count.
const Shards = 32

// padded is one cache-line-sized counter shard.
type padded struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing sharded counter.
type Counter struct {
	shards [Shards]padded
}

// Add increments the counter by d on the given shard (callers pass their
// worker index; any int is folded into range). Nil-safe.
func (c *Counter) Add(shard int, d int64) {
	if !Enabled || c == nil {
		return
	}
	c.shards[uint(shard)&(Shards-1)].v.Add(d)
}

// Inc is Add(shard, 1).
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value folds the shards into the counter's total. Nil-safe (returns 0).
func (c *Counter) Value() int64 {
	if !Enabled || c == nil {
		return 0
	}
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Gauge is an instantaneous value (last write wins).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(v int64) {
	if !Enabled || g == nil {
		return
	}
	g.v.Store(v)
}

// Value reads the gauge. Nil-safe (returns 0).
func (g *Gauge) Value() int64 {
	if !Enabled || g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: bounds are inclusive upper
// bounds in ascending order, with an implicit +Inf bucket at the end.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last = +Inf
	sum    atomic.Int64
	total  atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []int64) *Histogram {
	if !Enabled {
		return nil
	}
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	return h
}

// Observe records one sample. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if !Enabled || h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// quantiles are the summary points exported from every histogram
// (snapshot keys and Prometheus series get the matching _p50/_p95/_p99
// suffixes).
var quantiles = []struct {
	q      float64
	suffix string
}{
	{0.50, "_p50"},
	{0.95, "_p95"},
	{0.99, "_p99"},
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// distribution by linear interpolation inside the bucket holding the
// rank, the standard fixed-bucket estimator. Samples landing in the
// +Inf bucket are reported as the largest finite bound — a floor, not
// an estimate, but an honest one. Nil-safe (returns 0, as does an empty
// histogram).
func (h *Histogram) Quantile(q float64) float64 {
	if !Enabled || h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c > 0 && float64(cum)+float64(c) >= rank {
			if i >= len(h.bounds) {
				return float64(h.bounds[len(h.bounds)-1])
			}
			lo := float64(0)
			if i > 0 {
				lo = float64(h.bounds[i-1])
			}
			hi := float64(h.bounds[i])
			return lo + (hi-lo)*(rank-float64(cum))/float64(c)
		}
		cum += c
	}
	return float64(h.bounds[len(h.bounds)-1])
}

// Count returns the number of samples. Nil-safe.
func (h *Histogram) Count() int64 {
	if !Enabled || h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all samples. Nil-safe.
func (h *Histogram) Sum() int64 {
	if !Enabled || h == nil {
		return 0
	}
	return h.sum.Load()
}

// Snapshot is a flat point-in-time view of a registry: metric name (with
// histogram buckets flattened to name_le_<bound>, plus name_sum and
// name_count) to value. It is what the Incomplete report, checkpoint
// files, and BENCH_enum.json embed.
type Snapshot map[string]int64

// metricKind tags a registry entry for Prometheus type lines.
type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

// entry is one registered metric.
type entry struct {
	name, help string
	kind       metricKind
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// Registry is an ordered collection of named metrics. The zero value is
// unusable; NewRegistry allocates one. A nil registry is a no-op source
// of nil metrics, so construction can be gated on a flag without
// spreading conditionals.
type Registry struct {
	mu      sync.Mutex
	entries []entry
}

// NewRegistry builds an empty registry (nil when telemetry is compiled
// out).
func NewRegistry() *Registry {
	if !Enabled {
		return nil
	}
	return &Registry{}
}

// NewCounter registers and returns a counter. Nil-safe (returns nil).
func (r *Registry) NewCounter(name, help string) *Counter {
	if !Enabled || r == nil {
		return nil
	}
	c := &Counter{}
	r.mu.Lock()
	r.entries = append(r.entries, entry{name: name, help: help, kind: counterKind, c: c})
	r.mu.Unlock()
	return c
}

// NewGauge registers and returns a gauge. Nil-safe (returns nil).
func (r *Registry) NewGauge(name, help string) *Gauge {
	if !Enabled || r == nil {
		return nil
	}
	g := &Gauge{}
	r.mu.Lock()
	r.entries = append(r.entries, entry{name: name, help: help, kind: gaugeKind, g: g})
	r.mu.Unlock()
	return g
}

// NewHistogramMetric registers and returns a histogram over bounds.
// Nil-safe (returns nil).
func (r *Registry) NewHistogramMetric(name, help string, bounds []int64) *Histogram {
	if !Enabled || r == nil {
		return nil
	}
	h := NewHistogram(bounds)
	r.mu.Lock()
	r.entries = append(r.entries, entry{name: name, help: help, kind: histogramKind, h: h})
	r.mu.Unlock()
	return h
}

// Snapshot flattens every registered metric into a Snapshot. Nil-safe
// (returns nil).
func (r *Registry) Snapshot() Snapshot {
	if !Enabled || r == nil {
		return nil
	}
	r.mu.Lock()
	entries := append([]entry(nil), r.entries...)
	r.mu.Unlock()
	s := Snapshot{}
	for _, e := range entries {
		switch e.kind {
		case counterKind:
			s[e.name] = e.c.Value()
		case gaugeKind:
			s[e.name] = e.g.Value()
		case histogramKind:
			var cum int64
			for i := range e.h.counts {
				cum += e.h.counts[i].Load()
				if i < len(e.h.bounds) {
					s[fmt.Sprintf("%s_le_%d", e.name, e.h.bounds[i])] = cum
				}
			}
			s[e.name+"_sum"] = e.h.Sum()
			s[e.name+"_count"] = e.h.Count()
			if e.h.Count() > 0 {
				for _, p := range quantiles {
					s[e.name+p.suffix] = int64(e.h.Quantile(p.q))
				}
			}
		}
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE lines, cumulative histogram
// buckets with an explicit +Inf, and _sum/_count series. Nil-safe.
func (r *Registry) WritePrometheus(w io.Writer) {
	if !Enabled || r == nil {
		return
	}
	r.mu.Lock()
	entries := append([]entry(nil), r.entries...)
	r.mu.Unlock()
	for _, e := range entries {
		fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help)
		switch e.kind {
		case counterKind:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", e.name, e.name, e.c.Value())
		case gaugeKind:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", e.name, e.name, e.g.Value())
		case histogramKind:
			fmt.Fprintf(w, "# TYPE %s histogram\n", e.name)
			var cum int64
			for i := range e.h.counts {
				cum += e.h.counts[i].Load()
				if i < len(e.h.bounds) {
					fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", e.name, e.h.bounds[i], cum)
				} else {
					fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum)
				}
			}
			fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", e.name, e.h.Sum(), e.name, e.h.Count())
			// Estimated tail quantiles ride along as separate gauge
			// families (a histogram family must not mix metric types,
			// so the summary points get their own _pNN names).
			for _, p := range quantiles {
				fmt.Fprintf(w, "# HELP %s%s estimated p%d of %s\n# TYPE %s%s gauge\n%s%s %g\n",
					e.name, p.suffix, int(p.q*100), e.name, e.name, p.suffix, e.name, p.suffix, e.h.Quantile(p.q))
			}
		}
	}
}

// Format renders a snapshot as sorted "name value" lines for human
// consumption (the CLI's final-report footer).
func (s Snapshot) Format() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-44s %d\n", k, s[k])
	}
	return b.String()
}
