package telemetry

import (
	"strings"
	"testing"
)

// TestCounterShardsFold checks that writes land on folded shards and
// Value sums them, including out-of-range shard indexes (workers pass
// their raw index; the counter masks).
func TestCounterShardsFold(t *testing.T) {
	if !Enabled {
		t.Skip("telemetry compiled out")
	}
	var c Counter
	for i := 0; i < 3*Shards; i++ {
		c.Inc(i)
	}
	c.Add(-1, 5) // negative shard must fold, not panic
	if got := c.Value(); got != int64(3*Shards)+5 {
		t.Fatalf("Value = %d, want %d", got, 3*Shards+5)
	}
}

// TestNilSafety: every method on every nil metric type must be a no-op —
// the engines instrument unconditionally and rely on this.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Add(0, 1)
	c.Inc(3)
	if c.Value() != 0 {
		t.Error("nil Counter.Value != 0")
	}
	var g *Gauge
	g.Set(7)
	if g.Value() != 0 {
		t.Error("nil Gauge.Value != 0")
	}
	var h *Histogram
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil Histogram not a no-op")
	}
	var r *Registry
	if r.NewCounter("x", "") != nil || r.NewGauge("y", "") != nil ||
		r.NewHistogramMetric("z", "", []int64{1}) != nil {
		t.Error("nil Registry must hand out nil metrics")
	}
	if r.Snapshot() != nil {
		t.Error("nil Registry.Snapshot != nil")
	}
	r.WritePrometheus(&strings.Builder{})

	var em *EnumMetrics
	if em.Registry() != nil || em.Snapshot() != nil {
		t.Error("nil EnumMetrics not a no-op")
	}
	var mm *MachineMetrics
	if mm.Registry() != nil || mm.Snapshot() != nil {
		t.Error("nil MachineMetrics not a no-op")
	}
}

// TestHistogramBuckets checks bucket assignment against inclusive upper
// bounds with the implicit +Inf bucket.
func TestHistogramBuckets(t *testing.T) {
	if !Enabled {
		t.Skip("telemetry compiled out")
	}
	h := NewHistogram([]int64{1, 4, 16})
	for _, v := range []int64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 2} // (≤1)=0,1  (≤4)=2,4  (≤16)=5,16  (+Inf)=17,1000
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	if h.Sum() != 0+1+2+4+5+16+17+1000 {
		t.Errorf("Sum = %d", h.Sum())
	}
}

// TestRegistrySnapshot checks the flat snapshot keys: plain names for
// counters and gauges, cumulative name_le_<bound> plus _sum/_count for
// histograms.
func TestRegistrySnapshot(t *testing.T) {
	if !Enabled {
		t.Skip("telemetry compiled out")
	}
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	g := r.NewGauge("g", "a gauge")
	h := r.NewHistogramMetric("h", "a histogram", []int64{2, 8})
	c.Add(1, 5)
	g.Set(-3)
	h.Observe(1)
	h.Observe(4)
	h.Observe(100)

	s := r.Snapshot()
	want := Snapshot{
		"c_total": 5, "g": -3,
		"h_le_2": 1, "h_le_8": 2, "h_sum": 105, "h_count": 3,
		// Summary points: p50 interpolates inside (2,8], the tail
		// quantiles land in +Inf and floor at the largest bound.
		"h_p50": 5, "h_p95": 8, "h_p99": 8,
	}
	for k, v := range want {
		if s[k] != v {
			t.Errorf("snapshot[%q] = %d, want %d", k, s[k], v)
		}
	}
	if len(s) != len(want) {
		t.Errorf("snapshot has %d keys, want %d: %v", len(s), len(want), s)
	}
}

// TestWritePrometheus checks the text exposition format: HELP/TYPE
// lines, cumulative buckets ending in an explicit +Inf, and _sum/_count.
func TestWritePrometheus(t *testing.T) {
	if !Enabled {
		t.Skip("telemetry compiled out")
	}
	r := NewRegistry()
	r.NewCounter("c_total", "a counter").Inc(0)
	r.NewGauge("g", "a gauge").Set(2)
	h := r.NewHistogramMetric("h", "a histogram", []int64{10})
	h.Observe(3)
	h.Observe(99)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP c_total a counter",
		"# TYPE c_total counter",
		"c_total 1",
		"# TYPE g gauge",
		"g 2",
		"# TYPE h histogram",
		"h_bucket{le=\"10\"} 1",
		"h_bucket{le=\"+Inf\"} 2",
		"h_sum 102",
		"h_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSnapshotFormat checks the human rendering is sorted by name.
func TestSnapshotFormat(t *testing.T) {
	s := Snapshot{"b": 2, "a": 1}
	out := s.Format()
	if strings.Index(out, "a") > strings.Index(out, "b") {
		t.Errorf("Format not sorted:\n%s", out)
	}
}

// TestEnumMetricsSnapshot checks the pre-registered bundle round-trips
// through its own registry.
func TestEnumMetricsSnapshot(t *testing.T) {
	if !Enabled {
		t.Skip("telemetry compiled out")
	}
	m := NewEnumMetrics(nil)
	m.Forks.Add(3, 7)
	m.Frontier.Set(9)
	m.Candidates.Observe(2)
	s := m.Snapshot()
	if s["enum_forks_total"] != 7 {
		t.Errorf("enum_forks_total = %d, want 7", s["enum_forks_total"])
	}
	if s["enum_frontier_depth"] != 9 {
		t.Errorf("enum_frontier_depth = %d, want 9", s["enum_frontier_depth"])
	}
	if s["enum_candidates_count"] != 1 {
		t.Errorf("enum_candidates_count = %d, want 1", s["enum_candidates_count"])
	}
}
