//go:build notelemetry

package telemetry

// Enabled is false under the notelemetry build tag: constructors return
// nil and every metric/trace method constant-folds to a no-op, removing
// the instrumentation from the binary entirely.
const Enabled = false
