// Package discipline implements the prescriptive programming discipline
// sketched in the paper's conclusions: "we can say a program is well
// synchronized if for every load of a non-synchronization variable there
// is exactly one eligible store which can provide its value according to
// Store Atomicity. This idea generalizes the notion of Proper
// Synchronization to arbitrary synchronization mechanisms."
//
// Check enumerates a program under a model and watches every Load
// Resolution point: a load of a data (non-synchronization) address whose
// candidate set ever holds more than one store marks a race — the program
// is not well synchronized. Loads of declared synchronization addresses
// (flags, locks) are exempt; nondeterminism there is the synchronization
// mechanism doing its job.
package discipline

import (
	"context"

	"fmt"
	"sort"

	"storeatomicity/internal/core"
	"storeatomicity/internal/order"
	"storeatomicity/internal/program"
)

// Violation is one racy resolution point.
type Violation struct {
	// Load is the label of the racy load.
	Load string
	// Addr is the data address it read.
	Addr program.Addr
	// Candidates are the store labels eligible at that point (> 1).
	Candidates []string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("load %s of address %d has %d eligible stores %v",
		v.Load, v.Addr, len(v.Candidates), v.Candidates)
}

// Report is the verdict for one program/model pair.
type Report struct {
	// WellSynchronized is true when no data load ever had more than
	// one candidate.
	WellSynchronized bool
	// Violations lists racy loads (deduplicated by load label, keeping
	// the largest candidate set seen).
	Violations []Violation
	// Result is the underlying enumeration, for further inspection.
	Result *core.Result
}

// Check enumerates p under pol and applies the well-synchronization
// criterion. syncAddrs lists the synchronization variables; all other
// addresses are data. The enumeration options' CandidateHook is
// overwritten.
func Check(ctx context.Context, p *program.Program, pol order.Policy, syncAddrs map[program.Addr]bool, opts core.Options) (*Report, error) {
	worst := map[string]Violation{}
	opts.CandidateHook = func(load string, addr program.Addr, candidates []string) {
		if syncAddrs[addr] || len(candidates) <= 1 {
			return
		}
		if prev, ok := worst[load]; !ok || len(candidates) > len(prev.Candidates) {
			worst[load] = Violation{Load: load, Addr: addr, Candidates: candidates}
		}
	}
	res, err := core.Enumerate(ctx, p, pol, opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{WellSynchronized: len(worst) == 0, Result: res}
	keys := make([]string, 0, len(worst))
	for k := range worst {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		rep.Violations = append(rep.Violations, worst[k])
	}
	return rep, nil
}
