package discipline

import (
	"context"

	"testing"

	"storeatomicity/internal/core"
	"storeatomicity/internal/order"
	"storeatomicity/internal/program"
)

// gatedMP builds properly synchronized message passing: the consumer only
// touches the data when the flag was observed set, behind a fence.
//
//	Writer: S x,42 ; Fence ; S y,1
//	Reader: r1 = L y ; r0 = (r1 == 0) ; Br r0 -> end ; Fence ; r2 = L x
func gatedMP(writerFence, readerFence bool) *program.Program {
	isZero := func(a []program.Value) program.Value {
		if a[0] == 0 {
			return 1
		}
		return 0
	}
	b := program.NewBuilder()
	ta := b.Thread("W")
	ta.StoreL("Sx", program.X, 42)
	if writerFence {
		ta.Fence()
	}
	ta.StoreL("Sy", program.Y, 1)
	tb := b.Thread("R")
	tb.LoadL("Ly", 1, program.Y)
	tb.Op(2, isZero, 1)
	end := tb.Len() + 2 // branch + optional fence + load
	if readerFence {
		end++
	}
	tb.Branch(2, end)
	if readerFence {
		tb.Fence()
	}
	tb.LoadL("Lx", 3, program.X)
	return b.Build()
}

var syncY = map[program.Addr]bool{program.Y: true}

// TestGatedFencedMPIsWellSynchronized: with both fences and the guard,
// the data load always has exactly one eligible store.
func TestGatedFencedMPIsWellSynchronized(t *testing.T) {
	rep, err := Check(context.Background(), gatedMP(true, true), order.Relaxed(), syncY, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.WellSynchronized {
		t.Errorf("gated+fenced MP reported racy: %v", rep.Violations)
	}
	// And the data value is deterministic when read.
	for _, e := range rep.Result.Executions {
		v := e.LoadValues()
		if lx, ok := v["Lx"]; ok && lx != 42 {
			t.Errorf("synchronized read saw %d", lx)
		}
	}
}

// TestUnfencedMPIsRacy: dropping either fence reintroduces the race.
func TestUnfencedMPIsRacy(t *testing.T) {
	for _, tc := range []struct {
		name                     string
		writerFence, readerFence bool
	}{
		{"no writer fence", false, true},
		{"no reader fence", true, false},
		{"no fences", false, false},
	} {
		rep, err := Check(context.Background(), gatedMP(tc.writerFence, tc.readerFence), order.Relaxed(), syncY, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rep.WellSynchronized {
			t.Errorf("%s: reported well synchronized", tc.name)
			continue
		}
		found := false
		for _, v := range rep.Violations {
			if v.Load == "Lx" && len(v.Candidates) > 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: violations %v do not implicate the data load", tc.name, rep.Violations)
		}
	}
}

// TestSyncAddressesExempt: under SC the same unfenced program is
// well-synchronized data-wise only when the guard is present; the flag
// load's nondeterminism never counts.
func TestSyncAddressesExempt(t *testing.T) {
	rep, err := Check(context.Background(), gatedMP(false, false), order.SC(), syncY, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Under SC the branch guard alone suffices: if Ly observed Sy then
	// Sx is the only candidate; the flag races but flags are exempt.
	if !rep.WellSynchronized {
		t.Errorf("SC gated MP racy: %v", rep.Violations)
	}
	// With nothing marked as a sync variable, the flag load itself
	// becomes a reported race.
	rep, err = Check(context.Background(), gatedMP(false, false), order.SC(), nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WellSynchronized {
		t.Error("flag load should race when not declared a sync variable")
	}
}

// TestViolationString formats readably.
func TestViolationString(t *testing.T) {
	v := Violation{Load: "Lx", Addr: program.X, Candidates: []string{"a", "b"}}
	if v.String() == "" {
		t.Error("empty rendering")
	}
}

// TestSingleThreadedIsWellSynchronized: no races without sharing.
func TestSingleThreadedIsWellSynchronized(t *testing.T) {
	b := program.NewBuilder()
	b.Thread("A").StoreL("S", program.X, 1).LoadL("L", 1, program.X)
	rep, err := Check(context.Background(), b.Build(), order.Relaxed(), nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.WellSynchronized {
		t.Errorf("single-threaded program racy: %v", rep.Violations)
	}
}
