package machine

// This file is the operational counterpart of the paper's Section 6: an
// in-order multiprocessor whose cores write through FIFO *store buffers*
// and satisfy their own loads from the newest buffered store to the same
// address — the hardware mechanism that makes Total Store Order
// non-atomic. RunTSO implements exactly the behavior the TSO model (with
// bypass edges) admits:
//
//   - a store enters the local buffer invisibly and drains to the
//     coherence protocol later, at a nondeterministic time;
//   - a load first checks the local buffer (the grey bypass edge of
//     Figure 11) and only then the global memory system;
//   - fences and atomics drain the buffer first.
//
// Sweeping seeds and checking traces against the enumerated TSO behavior
// set — including reaching Figure 10's non-serializable outcome — is the
// reproduction's operational confirmation that "TSO = in-order cores +
// store buffers" and that the naive reordering formulation is wrong.

import (
	"errors"
	"fmt"
	"math/rand"

	"storeatomicity/internal/coherence"
	"storeatomicity/internal/program"
)

// sbEntry is one buffered store.
type sbEntry struct {
	addr  program.Addr
	val   program.Value
	label string
}

// sbCore is an in-order core with a store buffer.
type sbCore struct {
	id     int
	instrs []program.Instr
	pc     int
	regs   map[program.Reg]program.Value
	buf    []sbEntry
	dyn    int
}

// RunTSO simulates p on store-buffer hardware. Config.Policy is ignored —
// the machine *is* TSO by construction; WindowSize is likewise ignored
// (cores are in-order).
func RunTSO(p *program.Program, cfg Config) (*Trace, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sys := coherence.NewSystem(len(p.Threads), p.Init)
	cores := make([]*sbCore, len(p.Threads))
	for i := range cores {
		cores[i] = &sbCore{id: i, instrs: p.Threads[i].Instrs, regs: map[program.Reg]program.Value{}}
	}
	tr := &Trace{
		LoadSources: map[string]string{},
		LoadValues:  map[string]program.Value{},
		StoreValues: map[string]program.Value{},
	}

	// action encodes either "execute core c's next instruction"
	// (drain=false) or "drain the oldest buffered store of core c".
	type action struct {
		core  int
		drain bool
	}
	for {
		var ready []action
		done := true
		for _, c := range cores {
			if len(c.buf) > 0 {
				done = false
				ready = append(ready, action{core: c.id, drain: true})
			}
			if c.pc < len(c.instrs) {
				done = false
				if c.canExecute() {
					ready = append(ready, action{core: c.id, drain: false})
				}
			}
		}
		if done {
			break
		}
		if len(ready) == 0 {
			return nil, errors.New("machine: store-buffer deadlock")
		}
		a := ready[rng.Intn(len(ready))]
		c := cores[a.core]
		if a.drain {
			e := c.buf[0]
			c.buf = c.buf[1:]
			sys.Write(c.id, e.addr, e.val, e.label)
			tr.StoreValues[e.label] = e.val
		} else if err := c.execute(sys, tr); err != nil {
			return nil, err
		}
		tr.Steps++
		if tr.Steps > cfg.MaxSteps {
			return nil, fmt.Errorf("machine: step budget (%d) exhausted", cfg.MaxSteps)
		}
	}
	sys.Flush()
	tr.Coherence = sys.Stats()
	return tr, nil
}

// canExecute reports whether the next instruction can run now: fences and
// atomics wait for the buffer to drain, everything else is always ready
// (in-order execution has its operands by construction).
func (c *sbCore) canExecute() bool {
	switch c.instrs[c.pc].Kind {
	case program.KindFence, program.KindAtomic:
		return len(c.buf) == 0
	default:
		return true
	}
}

// value reads a register (unwritten registers read zero).
func (c *sbCore) value(r program.Reg) program.Value { return c.regs[r] }

// addr computes a memory instruction's effective address.
func (c *sbCore) addr(in program.Instr) program.Addr {
	if in.UseAddrReg {
		return program.ValueAddr(c.value(in.AddrReg))
	}
	return in.AddrConst
}

// operand computes a store's or atomic's data operand.
func (c *sbCore) operand(in program.Instr) program.Value {
	if in.UseValReg {
		return c.value(in.ValReg)
	}
	return in.ValConst
}

// execute runs the next instruction of the core.
func (c *sbCore) execute(sys *coherence.System, tr *Trace) error {
	in := c.instrs[c.pc]
	c.pc++
	label := in.Label
	if label == "" {
		label = fmt.Sprintf("T%d.%d", c.id, c.dyn)
	}
	c.dyn++
	switch in.Kind {
	case program.KindOp:
		vals := make([]program.Value, len(in.Args))
		for i, r := range in.Args {
			vals[i] = c.value(r)
		}
		var v program.Value
		if in.Fn != nil {
			v = in.Fn(vals)
		}
		c.regs[in.Dest] = v
	case program.KindBranch:
		if c.value(in.CondReg) != 0 {
			c.pc = in.Target
		}
	case program.KindFence:
		// Buffer already drained (canExecute).
	case program.KindLoad:
		a := c.addr(in)
		// Store-buffer bypass: newest matching entry wins.
		for i := len(c.buf) - 1; i >= 0; i-- {
			if c.buf[i].addr == a {
				c.regs[in.Dest] = c.buf[i].val
				tr.LoadSources[label] = c.buf[i].label
				tr.LoadValues[label] = c.buf[i].val
				return nil
			}
		}
		d := sys.Read(c.id, a)
		c.regs[in.Dest] = d.Value
		tr.LoadSources[label] = d.Store
		tr.LoadValues[label] = d.Value
	case program.KindStore:
		c.buf = append(c.buf, sbEntry{addr: c.addr(in), val: c.operand(in), label: label})
	case program.KindAtomic:
		// Buffer is empty (canExecute), so the RMW acts directly on
		// the coherence system and is indivisible within this step.
		a := c.addr(in)
		d := sys.Read(c.id, a)
		c.regs[in.Dest] = d.Value
		tr.LoadSources[label] = d.Store
		tr.LoadValues[label] = d.Value
		op := c.operand(in)
		switch in.Atomic {
		case program.AtomicCAS:
			if d.Value == in.Expect {
				sys.Write(c.id, a, op, label)
				tr.StoreValues[label] = op
			}
		case program.AtomicSwap:
			sys.Write(c.id, a, op, label)
			tr.StoreValues[label] = op
		case program.AtomicAdd:
			sys.Write(c.id, a, d.Value+op, label)
			tr.StoreValues[label] = d.Value + op
		}
	default:
		return fmt.Errorf("machine: unsupported kind %v", in.Kind)
	}
	return nil
}
