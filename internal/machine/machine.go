// Package machine is an operational multiprocessor simulator: out-of-order
// cores with a bounded issue window, executing over the MSI coherence
// protocol of package coherence. It plays the role of "real hardware" in
// the Section 4.2 cross-validation experiment: the machine enforces the
// reordering axioms *conservatively* (it blocks instead of speculating, it
// resolves coherence eagerly), so every execution it can produce must lie
// within the behavior set enumerated by the model — but typically not the
// other way around.
//
// Scheduling nondeterminism comes from a seeded PRNG choosing among
// issuable instructions, so sweeping seeds samples the machine's behavior
// space reproducibly.
package machine

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"storeatomicity/internal/coherence"
	"storeatomicity/internal/order"
	"storeatomicity/internal/program"
	"storeatomicity/internal/telemetry"
)

// noDep marks an absent producer.
const noDep = -1

// Config tunes a simulation run.
type Config struct {
	// Policy is the reordering discipline the cores enforce. Bypass
	// cells are treated as Always (a machine without a store buffer is
	// strictly more ordered, hence still conservative).
	Policy order.Policy
	// WindowSize bounds un-issued instructions per core (default 8).
	// Window 1 degenerates to an in-order core.
	WindowSize int
	// Seed drives the issue scheduler.
	Seed int64
	// MaxSteps bounds total issues (default 4096) to catch livelock in
	// looping programs.
	MaxSteps int
	// ValuePredict enables *naive* value speculation: a load may return
	// the value of any store to its address — chosen by the scheduler
	// PRNG — without ever validating the guess. This deliberately
	// broken mode reproduces the observation of Martin et al. (MICRO
	// 2001), cited in Section 1 of the paper, that unchecked value
	// prediction violates the memory model: traces escape even the SC
	// behavior set and are rejected by the verify checker.
	ValuePredict bool
	// Faults, when non-nil, attaches a seeded bus-fault injector to the
	// coherence system: delayed and reordered transactions, randomized
	// stalls, and NACKed ownership transfers with capped exponential
	// backoff. A stalled instruction burns a scheduler step without
	// issuing. Faults perturb only *when* transactions happen, never
	// what they do, so faulty runs remain within the model's behavior
	// set (see package coherence). Nil leaves the simulation
	// byte-identical to the fault-free build.
	Faults *coherence.FaultConfig
	// Telemetry, when non-nil, receives live counters: issued steps,
	// fault stalls, completed runs, and — wired through to the coherence
	// system — bus transactions, hits/misses, invalidations, writebacks,
	// and injected faults. Nil costs nothing.
	Telemetry *telemetry.MachineMetrics
}

func (c Config) withDefaults() Config {
	if c.WindowSize == 0 {
		c.WindowSize = 8
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 4096
	}
	return c
}

// Trace is the observable result of one run.
type Trace struct {
	// LoadSources maps load label → label of the store observed.
	LoadSources map[string]string
	// LoadValues maps load label → value observed.
	LoadValues map[string]program.Value
	// StoreValues maps store label → value written (atomics appear
	// only when their store half fired).
	StoreValues map[string]program.Value
	// Steps counts instructions issued.
	Steps int
	// Stalls counts scheduler steps burned by fault-stalled
	// instructions (always zero without Config.Faults).
	Stalls int
	// Coherence carries the protocol counters, including fault stats.
	Coherence coherence.Stats
}

// SourceKey canonicalizes the (load → source) map in the same format as
// core.Execution.SourceKey, enabling set membership checks against
// enumerated behaviors.
func (t *Trace) SourceKey() string {
	labels := make([]string, 0, len(t.LoadSources))
	for l := range t.LoadSources {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s<-%s", l, t.LoadSources[l])
	}
	return b.String()
}

// entry is a decoded, possibly un-issued instruction instance.
type entry struct {
	instr  program.Instr
	label  string
	issued bool
	value  program.Value
	// producer entry indexes within the same core.
	addrDep, valDep, condDep int
	argDeps                  []int
}

// coreState is one core's pipeline front end plus rename map.
type coreState struct {
	id      int
	instrs  []program.Instr
	pc      int
	entries []entry
	regs    map[program.Reg]int
	blocked int // entry index of unresolved branch, noDep if none
	pending int // un-issued entry count
	dyn     int // dynamic instruction counter for label disambiguation
}

// Run simulates p to completion under cfg and returns the trace.
func Run(p *program.Program, cfg Config) (*Trace, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sys := coherence.NewSystem(len(p.Threads), p.Init)
	sys.SetTelemetry(cfg.Telemetry)
	if cfg.Faults != nil {
		sys.EnableFaults(*cfg.Faults)
	}
	cores := make([]*coreState, len(p.Threads))
	for i := range cores {
		cores[i] = &coreState{
			id: i, instrs: p.Threads[i].Instrs,
			regs: map[program.Reg]int{}, blocked: noDep,
		}
	}
	tr := &Trace{
		LoadSources: map[string]string{},
		LoadValues:  map[string]program.Value{},
		StoreValues: map[string]program.Value{},
	}

	// Static prediction table for ValuePredict: every constant store the
	// program text could perform, by address.
	var predictions map[program.Addr][]prediction
	if cfg.ValuePredict {
		predictions = map[program.Addr][]prediction{}
		for _, t := range p.Threads {
			for _, in := range t.Instrs {
				if in.Kind == program.KindStore && !in.UseAddrReg && !in.UseValReg {
					predictions[in.AddrConst] = append(predictions[in.AddrConst],
						prediction{label: in.Label, val: in.ValConst})
				}
			}
		}
	}

	type choice struct{ core, idx int }
	for {
		for _, c := range cores {
			c.fetch(cfg.WindowSize)
		}
		var ready []choice
		done := true
		for _, c := range cores {
			if c.pending > 0 || c.blocked != noDep || c.pc < len(c.instrs) {
				done = false
			}
			for idx := range c.entries {
				if c.issuable(idx, cfg.Policy) {
					ready = append(ready, choice{core: c.id, idx: idx})
				}
			}
		}
		if done {
			break
		}
		if len(ready) == 0 {
			return nil, errors.New("machine: no issuable instruction (deadlock)")
		}
		pick := ready[rng.Intn(len(ready))]
		if cores[pick.core].issue(pick.idx, sys, tr, rng, predictions) {
			tr.Steps++
			if cfg.Telemetry != nil {
				cfg.Telemetry.Steps.Inc(pick.core)
			}
		} else {
			tr.Stalls++
			if cfg.Telemetry != nil {
				cfg.Telemetry.Stalls.Inc(pick.core)
			}
		}
		if tr.Steps+tr.Stalls > cfg.MaxSteps {
			return nil, fmt.Errorf("machine: step budget (%d) exhausted", cfg.MaxSteps)
		}
	}
	sys.Flush()
	tr.Coherence = sys.Stats()
	if cfg.Telemetry != nil {
		cfg.Telemetry.Runs.Inc(0)
	}
	return tr, nil
}

// fetch decodes instructions until the window is full, the program ends,
// or an unresolved branch blocks the front end (no branch speculation:
// conservative with respect to every policy in package order).
func (c *coreState) fetch(window int) {
	for c.pending < window && c.blocked == noDep && c.pc < len(c.instrs) {
		in := c.instrs[c.pc]
		c.pc++
		e := entry{instr: in, label: in.Label, addrDep: noDep, valDep: noDep, condDep: noDep}
		if e.label == "" {
			e.label = fmt.Sprintf("T%d.%d", c.id, c.dyn)
		}
		c.dyn++
		dep := func(r program.Reg) int {
			if i, ok := c.regs[r]; ok {
				return i
			}
			return noDep
		}
		switch in.Kind {
		case program.KindLoad:
			if in.UseAddrReg {
				e.addrDep = dep(in.AddrReg)
			}
		case program.KindStore, program.KindAtomic:
			if in.UseAddrReg {
				e.addrDep = dep(in.AddrReg)
			}
			if in.UseValReg {
				e.valDep = dep(in.ValReg)
			}
		case program.KindOp:
			e.argDeps = make([]int, len(in.Args))
			for i, r := range in.Args {
				e.argDeps[i] = dep(r)
			}
		case program.KindBranch:
			e.condDep = dep(in.CondReg)
		}
		idx := len(c.entries)
		c.entries = append(c.entries, e)
		c.pending++
		if in.Kind == program.KindLoad || in.Kind == program.KindOp || in.Kind == program.KindAtomic {
			c.regs[in.Dest] = idx
		}
		if in.Kind == program.KindBranch {
			c.blocked = idx
		}
	}
}

// depReady reports whether a producer has issued (noDep reads zero).
func (c *coreState) depReady(d int) bool { return d == noDep || c.entries[d].issued }

// addrOf returns the entry's effective address, ok=false while unknown.
func (c *coreState) addrOf(idx int) (program.Addr, bool) {
	e := &c.entries[idx]
	if !e.instr.UseAddrReg {
		return e.instr.AddrConst, true
	}
	if !c.depReady(e.addrDep) {
		return 0, false
	}
	if e.addrDep == noDep {
		return program.ValueAddr(0), true
	}
	return program.ValueAddr(c.entries[e.addrDep].value), true
}

// issuable implements the scoreboard: data deps resolved, and no older
// un-issued entry that the policy orders before this one. Address-
// dependent cells block conservatively while either address is unknown —
// the machine is non-speculative (Section 5.1's discipline).
func (c *coreState) issuable(idx int, pol order.Policy) bool {
	e := &c.entries[idx]
	if e.issued {
		return false
	}
	if !c.depReady(e.addrDep) || !c.depReady(e.valDep) || !c.depReady(e.condDep) {
		return false
	}
	for _, d := range e.argDeps {
		if !c.depReady(d) {
			return false
		}
	}
	for o := range c.entries[:idx] {
		oe := &c.entries[o]
		if oe.issued {
			continue
		}
		switch pol.Require(oe.instr.Kind, e.instr.Kind) {
		case order.Always, order.Bypass:
			return false
		case order.SameAddr:
			oa, ook := c.addrOf(o)
			ea, eok := c.addrOf(idx)
			if !ook || !eok || oa == ea {
				return false
			}
		}
	}
	return true
}

// prediction is one guessable (store label, value) pair.
type prediction struct {
	label string
	val   program.Value
}

// issue executes the entry against the coherence system and reports
// whether it actually issued: under fault injection a memory operation
// whose bus transaction stalls returns false with no state changed, and
// the scheduler retries it on a later step. When predictions is non-nil,
// half the loads (scheduler PRNG) guess a value instead of reading —
// naive value speculation, never validated.
func (c *coreState) issue(idx int, sys *coherence.System, tr *Trace, rng *rand.Rand, predictions map[program.Addr][]prediction) bool {
	e := &c.entries[idx]
	switch e.instr.Kind {
	case program.KindOp:
		vals := make([]program.Value, len(e.argDeps))
		for i, d := range e.argDeps {
			if d != noDep {
				vals[i] = c.entries[d].value
			}
		}
		if e.instr.Fn != nil {
			e.value = e.instr.Fn(vals)
		}
	case program.KindBranch:
		var cond program.Value
		if e.condDep != noDep {
			cond = c.entries[e.condDep].value
		}
		if c.blocked == idx {
			c.blocked = noDep
			if cond != 0 {
				c.pc = e.instr.Target
			}
		}
	case program.KindLoad:
		a, _ := c.addrOf(idx)
		if cands := predictions[a]; len(cands) > 0 && rng.Intn(2) == 0 {
			p := cands[rng.Intn(len(cands))]
			e.value = p.val
			tr.LoadSources[e.label] = p.label
			tr.LoadValues[e.label] = p.val
			break
		}
		d, ok := sys.FaultyRead(c.id, a)
		if !ok {
			return false
		}
		e.value = d.Value
		tr.LoadSources[e.label] = d.Store
		tr.LoadValues[e.label] = d.Value
	case program.KindStore:
		a, _ := c.addrOf(idx)
		v := e.instr.ValConst
		if e.instr.UseValReg && e.valDep != noDep {
			v = c.entries[e.valDep].value
		}
		if !sys.FaultyWrite(c.id, a, v, e.label) {
			return false
		}
		tr.StoreValues[e.label] = v
	case program.KindAtomic:
		// The simulator issues one instruction per step, so the
		// read-modify-write below is indivisible; acquiring
		// ownership through the Write path orders it in the
		// protocol's per-location store order. Under fault injection
		// FaultyOwn acquires exclusive ownership up front, so the
		// Read/Write pair below hits locally and the RMW stays
		// indivisible even when the injector stalls bus traffic.
		a, _ := c.addrOf(idx)
		if !sys.FaultyOwn(c.id, a) {
			return false
		}
		d := sys.Read(c.id, a)
		e.value = d.Value
		tr.LoadSources[e.label] = d.Store
		tr.LoadValues[e.label] = d.Value
		operand := e.instr.ValConst
		if e.instr.UseValReg && e.valDep != noDep {
			operand = c.entries[e.valDep].value
		}
		switch e.instr.Atomic {
		case program.AtomicCAS:
			if d.Value == e.instr.Expect {
				sys.Write(c.id, a, operand, e.label)
				tr.StoreValues[e.label] = operand
			}
		case program.AtomicSwap:
			sys.Write(c.id, a, operand, e.label)
			tr.StoreValues[e.label] = operand
		case program.AtomicAdd:
			sys.Write(c.id, a, d.Value+operand, e.label)
			tr.StoreValues[e.label] = d.Value + operand
		}
	case program.KindFence:
		// Ordering-only.
	}
	e.issued = true
	c.pending--
	return true
}
