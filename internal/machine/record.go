package machine

// RecordOf converts a machine trace back into a checker record, enabling
// the TSOtool methodology end to end: run random stimulus on (simulated)
// hardware, then verify the observed execution against the memory model
// with the Store Atomicity closure. It works for straight-line programs
// with constant addresses (the litmus corpus); branching or
// register-indirect programs are rejected because the dynamic instruction
// stream cannot be reconstructed from the static text.

import (
	"fmt"

	"storeatomicity/internal/program"
	"storeatomicity/internal/verify"
)

// RecordOf rebuilds the observed execution from the program text and a
// trace produced by Run or RunTSO on it.
func RecordOf(p *program.Program, tr *Trace) (*verify.Record, error) {
	rec := &verify.Record{Init: map[program.Addr]program.Value{}}
	for a, v := range p.Init {
		rec.Init[a] = v
	}
	for _, a := range p.Addresses() {
		if _, ok := rec.Init[a]; !ok {
			rec.Init[a] = 0
		}
	}
	for ti, t := range p.Threads {
		var ops []verify.Op
		for ii, in := range t.Instrs {
			if in.Label == "" && in.IsMemory() {
				return nil, fmt.Errorf("machine: instruction %d of thread %d has no label", ii, ti)
			}
			switch in.Kind {
			case program.KindOp:
				// Register-only; invisible to the record.
			case program.KindBranch:
				return nil, fmt.Errorf("machine: RecordOf cannot reconstruct branching programs")
			case program.KindFence:
				ops = append(ops, verify.Op{Kind: in.Kind, Label: fmt.Sprintf("F%d.%d", ti, ii), FenceMask: in.FenceMask})
			case program.KindLoad:
				if in.UseAddrReg {
					return nil, fmt.Errorf("machine: RecordOf cannot reconstruct register-indirect addresses")
				}
				src, ok := tr.LoadSources[in.Label]
				if !ok {
					return nil, fmt.Errorf("machine: trace has no observation for load %s", in.Label)
				}
				ops = append(ops, verify.Op{
					Kind: in.Kind, Addr: in.AddrConst, Value: tr.LoadValues[in.Label],
					Label: in.Label, SourceLabel: src,
				})
			case program.KindStore:
				if in.UseAddrReg {
					return nil, fmt.Errorf("machine: RecordOf cannot reconstruct register-indirect addresses")
				}
				v, ok := tr.StoreValues[in.Label]
				if !ok {
					v = in.ValConst
				}
				ops = append(ops, verify.Op{Kind: in.Kind, Addr: in.AddrConst, Value: v, Label: in.Label})
			case program.KindAtomic:
				if in.UseAddrReg {
					return nil, fmt.Errorf("machine: RecordOf cannot reconstruct register-indirect addresses")
				}
				src, ok := tr.LoadSources[in.Label]
				if !ok {
					return nil, fmt.Errorf("machine: trace has no observation for atomic %s", in.Label)
				}
				sv, did := tr.StoreValues[in.Label]
				ops = append(ops, verify.Op{
					Kind: in.Kind, Addr: in.AddrConst, Value: tr.LoadValues[in.Label],
					Label: in.Label, SourceLabel: src,
					DidStore: did, StoreValue: sv,
				})
			}
		}
		rec.Threads = append(rec.Threads, ops)
	}
	return rec, nil
}
