package machine

import (
	"testing"

	"storeatomicity/internal/coherence"
	"storeatomicity/internal/litmus"
	"storeatomicity/internal/order"
	"storeatomicity/internal/program"
)

func TestMachineDeterministicPerSeed(t *testing.T) {
	tc, _ := litmus.ByName("SB")
	for seed := int64(0); seed < 5; seed++ {
		a, err := Run(tc.Build(), Config{Policy: order.Relaxed(), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(tc.Build(), Config{Policy: order.Relaxed(), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if a.SourceKey() != b.SourceKey() {
			t.Errorf("seed %d: %q vs %q", seed, a.SourceKey(), b.SourceKey())
		}
	}
}

// TestMachineSubsetOfModel is experiment E10: sweep seeds over every
// litmus test; each machine execution's (load → source) map must appear in
// the behavior set the model enumerates. The machine is conservative, so
// containment — not equality — is the contract.
func TestMachineSubsetOfModel(t *testing.T) {
	const seeds = 60
	for _, tc := range litmus.Registry() {
		for _, mname := range []string{"SC", "TSO", "Relaxed"} {
			m, _ := litmus.ModelByName(mname)
			res, err := litmus.Run(tc, m)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.Name, mname, err)
			}
			allowed := map[string]bool{}
			for _, e := range res.Executions {
				allowed[e.SourceKey()] = true
			}
			for seed := int64(0); seed < seeds; seed++ {
				trc, err := Run(tc.Build(), Config{Policy: m.Policy, Seed: seed})
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", tc.Name, mname, seed, err)
				}
				if !allowed[trc.SourceKey()] {
					t.Errorf("%s/%s seed %d: machine produced %q, not in model's %d behaviors",
						tc.Name, mname, seed, trc.SourceKey(), len(allowed))
				}
			}
		}
	}
}

// TestMachineSCForbidsSBOutcome: under the SC policy the machine must
// never produce the store-buffering outcome, whatever the seed.
func TestMachineSCForbidsSBOutcome(t *testing.T) {
	tc, _ := litmus.ByName("SB")
	for seed := int64(0); seed < 200; seed++ {
		trc, err := Run(tc.Build(), Config{Policy: order.SC(), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if trc.LoadValues["Ly"] == 0 && trc.LoadValues["Lx"] == 0 {
			t.Fatalf("seed %d: SC machine produced the forbidden SB outcome", seed)
		}
	}
}

// TestMachineRelaxedFindsSBOutcome: some seed should exhibit the relaxed
// outcome, demonstrating the machine actually reorders.
func TestMachineRelaxedFindsSBOutcome(t *testing.T) {
	tc, _ := litmus.ByName("SB")
	for seed := int64(0); seed < 500; seed++ {
		trc, err := Run(tc.Build(), Config{Policy: order.Relaxed(), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if trc.LoadValues["Ly"] == 0 && trc.LoadValues["Lx"] == 0 {
			return
		}
	}
	t.Error("relaxed machine never produced the SB outcome in 500 seeds")
}

// TestWindowOneIsInOrder: with a single-entry window the core issues in
// program order, so even the relaxed policy behaves like SC on SB.
func TestWindowOneIsInOrder(t *testing.T) {
	tc, _ := litmus.ByName("SB")
	for seed := int64(0); seed < 200; seed++ {
		trc, err := Run(tc.Build(), Config{Policy: order.Relaxed(), WindowSize: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if trc.LoadValues["Ly"] == 0 && trc.LoadValues["Lx"] == 0 {
			t.Fatalf("seed %d: window-1 machine reordered", seed)
		}
	}
}

// TestMachineRunsBranches exercises the branch path: a loop that stores
// three times, then a load observing the final value.
func TestMachineRunsBranches(t *testing.T) {
	b := program.NewBuilder()
	tb := b.Thread("A")
	// r1 counts down from 2: body stores r1 to x each iteration.
	tb.Op(1, func([]program.Value) program.Value { return 2 })
	body := tb.Len()
	tb.StoreReg(program.X, 1)
	tb.Op(1, func(a []program.Value) program.Value { return a[0] - 1 }, 1)
	tb.Branch(1, body)
	tb.LoadL("Lfinal", 2, program.X)
	p := b.Build()
	trc, err := Run(p, Config{Policy: order.SC(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := trc.LoadValues["Lfinal"]; got != 1 {
		t.Errorf("final load = %d, want 1", got)
	}
}

// TestMachineStepBudget: an infinite loop trips MaxSteps.
func TestMachineStepBudget(t *testing.T) {
	b := program.NewBuilder()
	tb := b.Thread("A")
	tb.Op(1, func([]program.Value) program.Value { return 1 })
	tb.Branch(1, 0)
	if _, err := Run(b.Build(), Config{Policy: order.SC(), Seed: 0, MaxSteps: 100}); err == nil {
		t.Error("infinite loop did not trip the step budget")
	}
}

// TestCoherenceStatsPopulated: the trace surfaces protocol counters.
func TestCoherenceStatsPopulated(t *testing.T) {
	tc, _ := litmus.ByName("MP")
	trc, err := Run(tc.Build(), Config{Policy: order.SC(), Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if trc.Coherence.BusOps == 0 {
		t.Error("no bus operations recorded")
	}
	if trc.Steps == 0 {
		t.Error("no steps recorded")
	}
}

// TestMachineFaultySubsetOfModel extends experiment E10 with bus-fault
// injection: delayed, reordered, and NACK-retried transactions perturb
// only the schedule, never a transaction's effect, so every faulty
// execution must still fall inside the model's enumerated behavior set.
// The sweep asserts 500+ fault-injected runs total and that the injector
// actually fired.
func TestMachineFaultySubsetOfModel(t *testing.T) {
	faults := coherence.FaultConfig{
		DelayProb:   0.25,
		MaxStall:    4,
		ReorderProb: 0.15,
		RetryProb:   0.25,
		MaxRetries:  3,
	}
	const seeds = 10
	runs := 0
	var total coherence.FaultStats
	for _, tc := range litmus.Registry() {
		for _, mname := range []string{"SC", "TSO", "Relaxed"} {
			m, _ := litmus.ModelByName(mname)
			res, err := litmus.Run(tc, m)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.Name, mname, err)
			}
			allowed := map[string]bool{}
			for _, e := range res.Executions {
				allowed[e.SourceKey()] = true
			}
			for seed := int64(0); seed < seeds; seed++ {
				f := faults
				f.Seed = seed + 1
				trc, err := Run(tc.Build(), Config{Policy: m.Policy, Seed: seed, Faults: &f})
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", tc.Name, mname, seed, err)
				}
				runs++
				total.Delays += trc.Coherence.Faults.Delays
				total.Reorders += trc.Coherence.Faults.Reorders
				total.Retries += trc.Coherence.Faults.Retries
				total.StallCycles += trc.Coherence.Faults.StallCycles
				if !allowed[trc.SourceKey()] {
					t.Errorf("%s/%s seed %d: faulty machine produced %q, not in model's %d behaviors",
						tc.Name, mname, seed, trc.SourceKey(), len(allowed))
				}
			}
		}
	}
	if runs < 500 {
		t.Fatalf("only %d fault-injected runs; the containment claim needs 500+", runs)
	}
	if total.Delays == 0 || total.Reorders == 0 || total.Retries == 0 || total.StallCycles == 0 {
		t.Errorf("injector never fired some fault class: %+v over %d runs", total, runs)
	}
	t.Logf("%d faulty runs contained; faults: %+v", runs, total)
}

// TestMachineFaultsDeterministicPerSeed: fault placement is a pure
// function of the two seeds.
func TestMachineFaultsDeterministicPerSeed(t *testing.T) {
	tc, _ := litmus.ByName("IRIW")
	f := &coherence.FaultConfig{Seed: 7, DelayProb: 0.3, ReorderProb: 0.2, RetryProb: 0.3}
	for seed := int64(0); seed < 5; seed++ {
		a, err := Run(tc.Build(), Config{Policy: order.Relaxed(), Seed: seed, Faults: f})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(tc.Build(), Config{Policy: order.Relaxed(), Seed: seed, Faults: f})
		if err != nil {
			t.Fatal(err)
		}
		if a.SourceKey() != b.SourceKey() || a.Stalls != b.Stalls {
			t.Errorf("seed %d: nondeterministic faulty run: %q/%d vs %q/%d",
				seed, a.SourceKey(), a.Stalls, b.SourceKey(), b.Stalls)
		}
	}
}

// TestMachineNoFaultsNoStalls: without Config.Faults the trace must be
// byte-identical to the pre-fault-injection machine — zero stalls, zero
// fault counters.
func TestMachineNoFaultsNoStalls(t *testing.T) {
	tc, _ := litmus.ByName("MP")
	trc, err := Run(tc.Build(), Config{Policy: order.TSO(), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if trc.Stalls != 0 {
		t.Errorf("fault-free run recorded %d stalls", trc.Stalls)
	}
	if trc.Coherence.Faults != (coherence.FaultStats{}) {
		t.Errorf("fault-free run recorded fault stats %+v", trc.Coherence.Faults)
	}
}
