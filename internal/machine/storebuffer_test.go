package machine

import (
	"testing"

	"storeatomicity/internal/litmus"
	"storeatomicity/internal/program"
)

// TestStoreBufferSubsetOfTSO: every trace of the store-buffer machine is
// a behavior of the TSO model (Section 6's bypass formulation) — the
// operational/axiomatic correspondence, over the whole corpus.
func TestStoreBufferSubsetOfTSO(t *testing.T) {
	const seeds = 80
	m, _ := litmus.ModelByName("TSO")
	for _, tc := range litmus.Registry() {
		res, err := litmus.Run(tc, m)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		allowed := map[string]bool{}
		for _, e := range res.Executions {
			allowed[e.SourceKey()] = true
		}
		for seed := int64(0); seed < seeds; seed++ {
			tr, err := RunTSO(tc.Build(), Config{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", tc.Name, seed, err)
			}
			if !allowed[tr.SourceKey()] {
				t.Errorf("%s seed %d: store-buffer machine produced %q, not a TSO behavior",
					tc.Name, seed, tr.SourceKey())
			}
		}
	}
}

// figure10Outcome is the non-atomic execution of Figure 10.
var figure10Outcome = map[string]program.Value{"L4": 3, "L6": 5, "L9": 8, "L10": 1}

// findFigure10Seed sweeps seeds for the Figure 10 outcome on the
// store-buffer machine.
func findFigure10Seed(t *testing.T) (*Trace, bool) {
	t.Helper()
	tc, _ := litmus.ByName("Figure10")
	for seed := int64(0); seed < 3000; seed++ {
		tr, err := RunTSO(tc.Build(), Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		match := true
		for l, v := range figure10Outcome {
			if tr.LoadValues[l] != v {
				match = false
				break
			}
		}
		if match {
			return tr, true
		}
	}
	return nil, false
}

// TestStoreBufferReachesFigure10 is the flagship operational experiment:
// real store-buffer hardware produces the paper's non-serializable
// execution — and that trace is rejected as a behavior of the naive TSO
// formulation, operationally confirming Figure 11's center graph is
// wrong.
func TestStoreBufferReachesFigure10(t *testing.T) {
	tr, ok := findFigure10Seed(t)
	if !ok {
		t.Fatal("store-buffer machine never produced the Figure 10 outcome in 3000 seeds")
	}
	// Both loads must have been satisfied from the buffer (their source
	// is the same-thread store).
	if tr.LoadSources["L4"] != "S3" || tr.LoadSources["L9"] != "S8" {
		t.Errorf("expected buffered sources, got L4<-%s L9<-%s", tr.LoadSources["L4"], tr.LoadSources["L9"])
	}
	tc, _ := litmus.ByName("Figure10")
	naive, _ := litmus.ModelByName("NaiveTSO")
	res, err := litmus.Run(tc, naive)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Executions {
		if e.SourceKey() == tr.SourceKey() {
			t.Fatal("naive TSO admits the store-buffer trace; it should not")
		}
	}
}

// TestStoreBufferSBOutcome: plain SB exhibits the relaxed outcome on this
// machine (stores parked in buffers while both loads read memory).
func TestStoreBufferSBOutcome(t *testing.T) {
	tc, _ := litmus.ByName("SB")
	for seed := int64(0); seed < 500; seed++ {
		tr, err := RunTSO(tc.Build(), Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if tr.LoadValues["Ly"] == 0 && tr.LoadValues["Lx"] == 0 {
			return
		}
	}
	t.Error("store-buffer machine never exhibited store buffering in 500 seeds")
}

// TestStoreBufferFenceDiscipline: fenced SB never shows the relaxed
// outcome — the fence drains the buffer.
func TestStoreBufferFenceDiscipline(t *testing.T) {
	tc, _ := litmus.ByName("SB+Fences")
	for seed := int64(0); seed < 300; seed++ {
		tr, err := RunTSO(tc.Build(), Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if tr.LoadValues["Ly"] == 0 && tr.LoadValues["Lx"] == 0 {
			t.Fatalf("seed %d: fence failed to drain the store buffer", seed)
		}
	}
}

// TestStoreBufferAtomicsSerialize: the CAS race has exactly one winner on
// this machine too (atomics drain the buffer and act on coherence).
func TestStoreBufferAtomicsSerialize(t *testing.T) {
	tc, _ := litmus.ByName("CAS-Lock")
	for seed := int64(0); seed < 300; seed++ {
		tr, err := RunTSO(tc.Build(), Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if tr.LoadValues["A.cas"] == 0 && tr.LoadValues["B.cas"] == 0 {
			t.Fatalf("seed %d: both CAS operations won", seed)
		}
	}
}

// TestStoreBufferBranches: loops work on the in-order machine.
func TestStoreBufferBranches(t *testing.T) {
	b := program.NewBuilder()
	tb := b.Thread("A")
	tb.Op(1, func([]program.Value) program.Value { return 2 })
	body := tb.Len()
	tb.StoreReg(program.X, 1)
	tb.Op(1, func(a []program.Value) program.Value { return a[0] - 1 }, 1)
	tb.Branch(1, body)
	tb.Fence()
	tb.LoadL("Lfinal", 2, program.X)
	tr, err := RunTSO(b.Build(), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.LoadValues["Lfinal"] != 1 {
		t.Errorf("final load = %d, want 1", tr.LoadValues["Lfinal"])
	}
}

// TestStoreBufferDeterministic: same seed, same trace.
func TestStoreBufferDeterministic(t *testing.T) {
	tc, _ := litmus.ByName("Figure10")
	for seed := int64(0); seed < 5; seed++ {
		a, err := RunTSO(tc.Build(), Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunTSO(tc.Build(), Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if a.SourceKey() != b.SourceKey() {
			t.Errorf("seed %d: nondeterministic", seed)
		}
	}
}
