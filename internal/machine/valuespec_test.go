package machine

import (
	"testing"

	"storeatomicity/internal/litmus"
	"storeatomicity/internal/order"
	"storeatomicity/internal/verify"
)

// TestNaiveValuePredictionViolatesSC reproduces the Martin et al.
// observation cited in the paper's introduction: a machine that predicts
// load values without validating them produces executions outside the
// memory model — even outside SC — and the Store Atomicity checker
// catches them.
func TestNaiveValuePredictionViolatesSC(t *testing.T) {
	// Message passing: predicting the flag's eventual value 1 while the
	// data load still reads the initial 0 fabricates the outcome SC
	// forbids.
	tc, _ := litmus.ByName("MP")
	m, _ := litmus.ModelByName("SC")
	res, err := litmus.Run(tc, m)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{}
	for _, e := range res.Executions {
		allowed[e.SourceKey()] = true
	}
	escaped := 0
	rejected := 0
	for seed := int64(0); seed < 400; seed++ {
		prog := tc.Build()
		tr, err := Run(prog, Config{Policy: order.SC(), Seed: seed, ValuePredict: true})
		if err != nil {
			t.Fatal(err)
		}
		if allowed[tr.SourceKey()] {
			continue
		}
		escaped++
		rec, err := RecordOf(prog, tr)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := verify.Check(rec, order.SC(), verify.RulesABC)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Accepted {
			rejected++
		}
	}
	if escaped == 0 {
		t.Fatal("naive value prediction never escaped the SC behavior set in 400 seeds")
	}
	if rejected == 0 {
		t.Error("the checker accepted every escaped trace; it should reject SC violations")
	}
	t.Logf("value prediction escaped SC in %d/400 runs; checker rejected %d of those", escaped, rejected)
}

// TestValuePredictionOffStaysContained is the control: without prediction
// the SC machine never leaves the SC behavior set.
func TestValuePredictionOffStaysContained(t *testing.T) {
	tc, _ := litmus.ByName("SB")
	m, _ := litmus.ModelByName("SC")
	res, err := litmus.Run(tc, m)
	if err != nil {
		t.Fatal(err)
	}
	allowed := map[string]bool{}
	for _, e := range res.Executions {
		allowed[e.SourceKey()] = true
	}
	for seed := int64(0); seed < 200; seed++ {
		tr, err := Run(tc.Build(), Config{Policy: order.SC(), Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !allowed[tr.SourceKey()] {
			t.Fatalf("seed %d escaped without value prediction", seed)
		}
	}
}

// TestTSOtoolMethodology closes the loop the paper attributes to TSOtool:
// random hardware runs, post-hoc graph checking. Every store-buffer trace
// must pass the TSO checker; the SB traces that exploited the buffer must
// fail the SC checker.
func TestTSOtoolMethodology(t *testing.T) {
	tc, _ := litmus.ByName("SB")
	sawSCViolation := false
	for seed := int64(0); seed < 300; seed++ {
		prog := tc.Build()
		tr, err := RunTSO(prog, Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := RecordOf(prog, tr)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := verify.Check(rec, order.TSO(), verify.RulesABC)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Accepted {
			t.Fatalf("seed %d: TSO checker rejected a store-buffer trace: %s", seed, rep.Reason)
		}
		scRep, err := verify.Check(rec, order.SC(), verify.RulesABC)
		if err != nil {
			t.Fatal(err)
		}
		if !scRep.Accepted {
			sawSCViolation = true
		}
	}
	if !sawSCViolation {
		t.Error("no store-buffer trace violated SC in 300 seeds")
	}
}

// TestRecordOfRoundTrip: records built from traces check cleanly against
// the machine's own policy across the corpus (branch-free tests only).
func TestRecordOfRoundTrip(t *testing.T) {
	for _, tc := range litmus.Registry() {
		prog := tc.Build()
		hasBranch := false
		for _, th := range prog.Threads {
			for _, in := range th.Instrs {
				if in.Kind == 1 /* Branch */ || in.UseAddrReg {
					hasBranch = true
				}
			}
		}
		if hasBranch {
			continue
		}
		tr, err := Run(prog, Config{Policy: order.Relaxed(), Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		rec, err := RecordOf(prog, tr)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		rep, err := verify.Check(rec, order.Relaxed(), verify.RulesABC)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if !rep.Accepted {
			t.Errorf("%s: checker rejected a legitimate machine trace: %s", tc.Name, rep.Reason)
		}
	}
}
