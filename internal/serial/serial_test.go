package serial

import (
	"testing"

	"storeatomicity/internal/litmus"
	"storeatomicity/internal/program"
)

// TestEveryBehaviorSerializable is experiment E8: every execution
// enumerated under a store-atomic model (no bypass observations) has a
// witness serialization, and the witness passes Check.
func TestEveryBehaviorSerializable(t *testing.T) {
	for _, tc := range litmus.Registry() {
		for _, m := range litmus.Models() {
			if m.Name == "NaiveTSO" {
				continue // deliberately broken model
			}
			res, err := litmus.Run(tc, m)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.Name, m.Name, err)
			}
			for _, e := range res.Executions {
				if len(e.Bypasses) > 0 {
					continue // non-atomic observation: serializability not promised
				}
				w, err := Witness(e)
				if err != nil {
					t.Errorf("%s/%s: execution %s not serializable", tc.Name, m.Name, e.SourceKey())
					continue
				}
				if cerr := Check(e, w); cerr != nil {
					t.Errorf("%s/%s: witness fails check: %v", tc.Name, m.Name, cerr)
				}
			}
		}
	}
}

// TestBypassExecutionNotSerializable pins Section 6: the Figure 10 outcome
// that exploits the store buffer "obeys TSO but violates memory atomicity"
// — it must have no serialization.
func TestBypassExecutionNotSerializable(t *testing.T) {
	tc, ok := litmus.ByName("Figure10")
	if !ok {
		t.Fatal("Figure10 not registered")
	}
	m, _ := litmus.ModelByName("TSO")
	res, err := litmus.Run(tc, m)
	if err != nil {
		t.Fatal(err)
	}
	e := res.FindOutcome(map[string]program.Value{"L4": 3, "L6": 5, "L9": 8, "L10": 1})
	if e == nil {
		t.Fatal("TSO did not produce the Figure 10 execution")
	}
	if len(e.Bypasses) == 0 {
		t.Fatal("expected bypass observations in the Figure 10 execution")
	}
	if _, err := Witness(e); err == nil {
		t.Error("Figure 10 TSO execution should not be serializable")
	}
}

// TestCheckRejectsBadOrders feeds Check orders violating each condition.
func TestCheckRejectsBadOrders(t *testing.T) {
	tc, _ := litmus.ByName("SB")
	m, _ := litmus.ModelByName("SC")
	res, err := litmus.Run(tc, m)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Executions[0]
	w, err := Witness(e)
	if err != nil {
		t.Fatal(err)
	}
	// Permutation violating condition 1 or 3: reverse the witness.
	rev := make([]int, len(w))
	for i, v := range w {
		rev[len(w)-1-i] = v
	}
	if err := Check(e, rev); err == nil {
		t.Error("reversed witness accepted")
	}
	// Truncated order.
	if err := Check(e, w[:len(w)-1]); err == nil {
		t.Error("truncated order accepted")
	}
	// Duplicate entry.
	dup := append(append([]int(nil), w[:len(w)-1]...), w[0])
	if err := Check(e, dup); err == nil {
		t.Error("order with duplicate accepted")
	}
}

// TestCountsConsistent: the number of valid serializations is positive and
// never exceeds the raw linear-extension count of the @ order.
func TestCountsConsistent(t *testing.T) {
	for _, name := range []string{"SB", "MP", "Figure3", "Figure5"} {
		tc, ok := litmus.ByName(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		m, _ := litmus.ModelByName("Relaxed")
		res, err := litmus.Run(tc, m)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range res.Executions {
			c := Count(e, 0)
			le := LinearExtensions(e)
			if c == 0 {
				t.Errorf("%s: execution %s has zero serializations", name, e.SourceKey())
			}
			if c > le {
				t.Errorf("%s: serializations %d exceed linear extensions %d", name, c, le)
			}
		}
	}
}

// TestForEachAgreesWithCount cross-checks the two enumeration paths.
func TestForEachAgreesWithCount(t *testing.T) {
	tc, _ := litmus.ByName("MP")
	m, _ := litmus.ModelByName("SC")
	res, err := litmus.Run(tc, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Executions {
		var n uint64
		ForEach(e, func(order []int) bool {
			if cerr := Check(e, order); cerr != nil {
				t.Fatalf("enumerated serialization fails check: %v", cerr)
			}
			n++
			return true
		})
		if c := Count(e, 0); c != n {
			t.Errorf("Count=%d, ForEach saw %d", c, n)
		}
	}
}

// TestCountLimit verifies early stopping.
func TestCountLimit(t *testing.T) {
	tc, _ := litmus.ByName("SB")
	m, _ := litmus.ModelByName("Relaxed")
	res, err := litmus.Run(tc, m)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Executions[0]
	if got := Count(e, 1); got != 1 {
		t.Errorf("Count with limit 1 returned %d", got)
	}
}
