// Package serial realizes Section 3.1 of the paper: serializations of an
// execution, defined as total orders on memory operations that
//
//  1. respect the ordering relation,
//  2. place every Load after the Store it observes, and
//  3. admit no intervening same-address Store between a Load and its
//     source.
//
// The package finds witness serializations (the constructive proof that a
// store-atomic execution is serializable), enumerates or counts all
// serializations (the paper's compactness claim: one graph stands for many
// indistinguishable interleavings), and checks a given total order against
// the three conditions.
package serial

import (
	"errors"
	"fmt"

	"storeatomicity/internal/core"
	"storeatomicity/internal/program"
)

// ErrNotSerializable is returned when no witness exists — expected exactly
// for non-atomic (TSO bypass) executions like Figure 10.
var ErrNotSerializable = errors.New("serial: execution has no serialization")

// searcher holds the backtracking state shared by Witness, ForEach and
// Count.
type searcher struct {
	e    *core.Execution
	ids  []int // memory node IDs
	idx  map[int]int
	pend []int // number of un-emitted @-ancestors (within ids ∪ via closure)
	last map[program.Addr]int

	// Atomic-block constraint (transactions): blockOf maps a node to
	// its block index or -1; once a block's first node is emitted only
	// that block's nodes may follow until blockRem drains.
	blockOf     []int
	blockRem    []int
	activeBlock int
}

func newSearcher(e *core.Execution) *searcher {
	s := &searcher{e: e, ids: e.MemoryNodeIDs(), idx: map[int]int{}, last: map[program.Addr]int{}, activeBlock: -1}
	for i, v := range s.ids {
		s.idx[v] = i
	}
	s.pend = make([]int, len(s.ids))
	s.blockOf = make([]int, len(s.ids))
	for i, v := range s.ids {
		s.blockOf[i] = -1
		anc := e.Graph.Anc(v)
		for _, u := range s.ids {
			if u != v && anc.Has(u) {
				s.pend[i]++
			}
		}
	}
	return s
}

// setBlocks installs atomic blocks: each element of blocks is a set of
// node IDs that must be emitted contiguously.
func (s *searcher) setBlocks(blocks [][]int) {
	s.blockRem = make([]int, len(blocks))
	for bi, blk := range blocks {
		s.blockRem[bi] = len(blk)
		for _, v := range blk {
			if i, ok := s.idx[v]; ok {
				s.blockOf[i] = bi
			}
		}
	}
}

// ready reports whether node v can be emitted next: all in-set ancestors
// emitted, and — for a Load — the most recent emitted Store to its address
// is its source (condition 3; condition 2 follows because the source must
// have been emitted).
func (s *searcher) ready(i int) bool {
	if s.pend[i] != 0 {
		return false
	}
	if s.activeBlock != -1 && s.blockOf[i] != s.activeBlock {
		return false
	}
	v := s.ids[i]
	n := &s.e.Nodes[v]
	if n.Reads() {
		lastStore, ok := s.last[n.Addr]
		return ok && lastStore == n.Source
	}
	return true
}

// run enumerates serializations, invoking fn for each complete order (the
// slice is reused; copy to retain). Stops early when fn returns false.
func (s *searcher) run(fn func(order []int) bool) {
	order := make([]int, 0, len(s.ids))
	prevLast := make([]int, 0, len(s.ids))
	var rec func() bool
	rec = func() bool {
		if len(order) == len(s.ids) {
			return fn(order)
		}
		for i := range s.ids {
			if s.pend[i] < 0 || !s.ready(i) {
				continue
			}
			v := s.ids[i]
			n := &s.e.Nodes[v]
			s.pend[i] = -1
			order = append(order, v)
			saved := -2
			if n.StoreEffect() {
				if old, ok := s.last[n.Addr]; ok {
					saved = old
				}
				s.last[n.Addr] = v
			}
			prevLast = append(prevLast, saved)
			savedBlock := s.activeBlock
			if b := s.blockOf[i]; b >= 0 {
				s.blockRem[b]--
				if s.blockRem[b] > 0 {
					s.activeBlock = b
				} else {
					s.activeBlock = -1
				}
			}
			desc := s.e.Graph.Desc(v)
			for j, u := range s.ids {
				if u != v && desc.Has(u) && s.pend[j] >= 0 {
					s.pend[j]--
				}
			}
			cont := rec()
			for j, u := range s.ids {
				if u != v && desc.Has(u) && s.pend[j] >= 0 {
					s.pend[j]++
				}
			}
			prevLast = prevLast[:len(prevLast)-1]
			if b := s.blockOf[i]; b >= 0 {
				s.blockRem[b]++
				s.activeBlock = savedBlock
			}
			if n.StoreEffect() {
				if saved == -2 {
					delete(s.last, n.Addr)
				} else {
					s.last[n.Addr] = saved
				}
			}
			order = order[:len(order)-1]
			s.pend[i] = 0
			if !cont {
				return false
			}
		}
		return true
	}
	rec()
}

// Witness returns one serialization of the execution's memory operations,
// or ErrNotSerializable. A store-atomic execution always has one; a TSO
// execution that exploited the store-buffer bypass may not.
func Witness(e *core.Execution) ([]int, error) {
	var out []int
	newSearcher(e).run(func(order []int) bool {
		out = append([]int(nil), order...)
		return false
	})
	if out == nil {
		return nil, ErrNotSerializable
	}
	return out, nil
}

// WitnessBlocks is Witness with atomic-block constraints: each element of
// blocks is a set of node IDs that must appear contiguously in the
// serialization. It realizes the paper's future-work reading of a
// transaction as "an atomic group of Load and Store operations".
func WitnessBlocks(e *core.Execution, blocks [][]int) ([]int, error) {
	s := newSearcher(e)
	s.setBlocks(blocks)
	var out []int
	s.run(func(order []int) bool {
		out = append([]int(nil), order...)
		return false
	})
	if out == nil {
		return nil, ErrNotSerializable
	}
	return out, nil
}

// ForEach invokes fn with every serialization (reused slice; copy to
// retain); stops early if fn returns false.
func ForEach(e *core.Execution, fn func(order []int) bool) {
	newSearcher(e).run(fn)
}

// Count returns the number of serializations, stopping at limit when
// limit > 0 (the count can be factorial in unordered operations).
func Count(e *core.Execution, limit uint64) uint64 {
	var n uint64
	newSearcher(e).run(func([]int) bool {
		n++
		return limit == 0 || n < limit
	})
	return n
}

// LinearExtensions counts the topological orders of the @ relation over
// memory operations, ignoring the load-value condition. Comparing it with
// Count quantifies how much of the interleaving freedom is structural
// (partial order) versus value-constrained.
func LinearExtensions(e *core.Execution) uint64 {
	return e.Graph.CountLinearExtensions(e.MemoryNodeIDs())
}

// Check verifies that order is a serialization of e: it must be a
// permutation of the memory nodes satisfying the three conditions of
// Section 3.1. A nil error means the order is a valid witness.
func Check(e *core.Execution, order []int) error {
	ids := e.MemoryNodeIDs()
	if len(order) != len(ids) {
		return fmt.Errorf("serial: order has %d nodes, execution has %d memory operations", len(order), len(ids))
	}
	pos := map[int]int{}
	for i, v := range order {
		if _, dup := pos[v]; dup {
			return fmt.Errorf("serial: node %d appears twice", v)
		}
		pos[v] = i
	}
	for _, v := range ids {
		if _, ok := pos[v]; !ok {
			return fmt.Errorf("serial: memory node %d missing from order", v)
		}
	}
	// Condition 1: A ≺ B ⇒ A < B. The graph mixes ≺ with derived
	// @ edges; all of them must hold in any serialization, so check
	// the full closure restricted to memory nodes.
	for _, a := range ids {
		desc := e.Graph.Desc(a)
		for _, b := range ids {
			if a != b && desc.Has(b) && pos[a] >= pos[b] {
				return fmt.Errorf("serial: order violates %s @ %s", e.Nodes[a].Label, e.Nodes[b].Label)
			}
		}
	}
	// Conditions 2 and 3 per load.
	for _, v := range ids {
		n := &e.Nodes[v]
		if !n.Reads() || !n.Resolved {
			continue
		}
		src := n.Source
		if pos[src] >= pos[v] {
			return fmt.Errorf("serial: %s reads %s which is not before it", n.Label, e.Nodes[src].Label)
		}
		for _, s := range ids {
			sn := &e.Nodes[s]
			if sn.StoreEffect() && sn.Addr == n.Addr &&
				pos[s] > pos[src] && pos[s] < pos[v] {
				return fmt.Errorf("serial: %s intervenes between %s and its reader %s",
					sn.Label, e.Nodes[src].Label, n.Label)
			}
		}
	}
	return nil
}
