package serial

import (
	"context"

	"testing"

	"storeatomicity/internal/core"
	"storeatomicity/internal/order"
	"storeatomicity/internal/program"
)

// blockFixture enumerates a two-transaction-shaped program under SC and
// returns one execution with the torn interleaving (B's loads split
// around A's stores).
func blockFixture(t *testing.T) (*core.Execution, [][]int) {
	t.Helper()
	b := program.NewBuilder()
	b.Thread("A").StoreL("S1", program.X, 1).StoreL("S2", program.Y, 1)
	b.Thread("B").LoadL("L1", 1, program.X).LoadL("L2", 2, program.Y)
	res, err := core.Enumerate(context.Background(), b.Build(), order.SC(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := res.FindOutcome(map[string]program.Value{"L1": 1, "L2": 0})
	if e == nil {
		t.Fatal("torn interleaving not enumerated")
	}
	blocks := [][]int{
		{e.NodeByLabel("S1").ID, e.NodeByLabel("S2").ID},
		{e.NodeByLabel("L1").ID, e.NodeByLabel("L2").ID},
	}
	return e, blocks
}

// TestWitnessBlocksRejectsTorn: the torn execution has ordinary
// serializations but none with both blocks contiguous.
func TestWitnessBlocksRejectsTorn(t *testing.T) {
	e, blocks := blockFixture(t)
	if _, err := Witness(e); err != nil {
		t.Fatal("execution should be serializable without block constraints")
	}
	if _, err := WitnessBlocks(e, blocks); err != ErrNotSerializable {
		t.Errorf("WitnessBlocks = %v, want ErrNotSerializable", err)
	}
}

// TestWitnessBlocksAcceptsConsistent: the untorn execution passes with
// the same blocks, and the witness keeps each block contiguous.
func TestWitnessBlocksAcceptsConsistent(t *testing.T) {
	b := program.NewBuilder()
	b.Thread("A").StoreL("S1", program.X, 1).StoreL("S2", program.Y, 1)
	b.Thread("B").LoadL("L1", 1, program.X).LoadL("L2", 2, program.Y)
	res, err := core.Enumerate(context.Background(), b.Build(), order.SC(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := res.FindOutcome(map[string]program.Value{"L1": 1, "L2": 1})
	if e == nil {
		t.Fatal("consistent execution missing")
	}
	blocks := [][]int{
		{e.NodeByLabel("S1").ID, e.NodeByLabel("S2").ID},
		{e.NodeByLabel("L1").ID, e.NodeByLabel("L2").ID},
	}
	w, err := WitnessBlocks(e, blocks)
	if err != nil {
		t.Fatal(err)
	}
	// Check contiguity of each block in the witness.
	pos := map[int]int{}
	for i, v := range w {
		pos[v] = i
	}
	for bi, blk := range blocks {
		min, max := len(w), -1
		for _, v := range blk {
			if pos[v] < min {
				min = pos[v]
			}
			if pos[v] > max {
				max = pos[v]
			}
		}
		if max-min+1 != len(blk) {
			t.Errorf("block %d not contiguous in witness", bi)
		}
	}
}

// TestWitnessBlocksEmpty: no blocks means plain Witness semantics.
func TestWitnessBlocksEmpty(t *testing.T) {
	e, _ := blockFixture(t)
	if _, err := WitnessBlocks(e, nil); err != nil {
		t.Errorf("empty blocks should behave like Witness: %v", err)
	}
}
