//go:build !notelemetry

package obslog

// Enabled gates journal emission at compile time. In default builds it
// is the constant true; `-tags notelemetry` swaps in the constant false
// and every Emit constant-folds to an empty function (the same pattern
// as internal/telemetry).
const Enabled = true
