// Package obslog is the structured event journal of the reproduction: a
// run-scoped NDJSON log of typed lifecycle events (shard leases and
// expiries, worker registrations and losses, chaos injections, spill and
// checkpoint incidents) built on log/slog's JSONHandler. Where
// internal/telemetry answers "how much/how fast", obslog answers "what
// happened, to which shard, on which worker, when" — and because every
// process in a distributed run stamps its events with the shared run ID,
// a source name, and a per-journal sequence number, journals from N
// processes merge into one deterministic timeline (Merge).
//
// The journal is nil-safe and build-tag gated like the metric types:
// every method on a nil *Journal is a no-op, New returns nil under
// -tags notelemetry, and Emit's Fields payload travels by value so a
// disabled call allocates nothing on the hot path.
package obslog

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"time"
)

// Type names one journal event. The dotted vocabulary groups events by
// subsystem: run.* (coordinator run lifecycle), shard.* (the lease state
// machine), worker.* (fleet membership), chaos.* (injected faults), and
// the engine incident events (spill.*, checkpoint.*, engine.*).
type Type string

const (
	// Run lifecycle (coordinator).
	RunStarted     Type = "run.started"     // job resolved, run ID minted
	RunPartitioned Type = "run.partitioned" // frontier split into shards
	RunFinished    Type = "run.finished"    // every shard accounted for
	RunDegraded    Type = "run.degraded"    // degradation latched (reason in Fields.Reason)

	// Shard lease state machine (coordinator; shard.started/completed
	// also emitted worker-side with the same span ID).
	ShardLeased       Type = "shard.leased"
	ShardStarted      Type = "shard.started" // worker began enumerating
	ShardCompleted    Type = "shard.completed"
	ShardDuplicate    Type = "shard.duplicate_rejected"
	ShardLeaseExpired Type = "shard.lease_expired"
	ShardRequeued     Type = "shard.requeued"
	ShardIncomplete   Type = "shard.incomplete" // worker-reported budget/panic stop

	// Fleet membership (coordinator detects; chaos harness respawns).
	WorkerRegistered      Type = "worker.registered"
	WorkerHeartbeatMissed Type = "worker.heartbeat_missed"
	WorkerLost            Type = "worker.lost"
	WorkerRespawned       Type = "worker.respawned"

	// Chaos injections (the harness journals its own faults, so a chaos
	// run's journal explains its own anomalies).
	ChaosKill      Type = "chaos.kill"
	ChaosPause     Type = "chaos.pause"
	ChaosPartition Type = "chaos.partition"

	// Engine incidents (core).
	SpillDegraded     Type = "spill.degraded"
	CheckpointWritten Type = "checkpoint.written"
	CheckpointFailed  Type = "checkpoint.failed"
	EngineIncomplete  Type = "engine.incomplete"
)

// Fields is the optional structured payload of an event. It travels by
// value — no variadic boxing — so an emit against a nil or disabled
// journal costs a nil check and nothing else. Zero-valued fields are
// omitted from the JSON line.
type Fields struct {
	// Worker names the worker the event concerns (not necessarily the
	// emitting process: the coordinator journals lease grants with the
	// grantee's name).
	Worker string
	// Span is the shard-attempt span ID minted by the coordinator at
	// lease time and echoed through completion, correlating coordinator
	// and worker events (and trace lanes) for one attempt.
	Span string
	// Attempt is the shard's 1-based lease attempt count.
	Attempt int
	// Count is a generic cardinality (shards partitioned, behaviors
	// found, fingerprints shipped — the event type disambiguates).
	Count int
	// States is a states-explored total.
	States int
	// Ms is a duration in milliseconds (shard latency, pause length).
	Ms int64
	// Reason classifies degradations and incompletes.
	Reason string
	// Detail carries free-form context (a path, a leg name).
	Detail string
	// Err is the error text of a failure event.
	Err string
}

// Journal is a run-scoped NDJSON event log. Every line carries the
// event type (msg), the wall-clock time, the run ID, the emitting
// source, and a monotonic per-journal sequence number; Merge sorts on
// (time, src, seq) so concatenating journals from any number of
// processes yields one stable timeline.
//
// All methods are nil-safe, and a Journal is safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	h    slog.Handler
	sink *lineSink
	now  func() time.Time
	run  string
	src  string
	seq  uint64
}

// Options configures a Journal beyond the New defaults.
type Options struct {
	// Out receives NDJSON lines as they are emitted (nil = ring only).
	Out io.Writer
	// Run is the initial run ID (the coordinator overrides a worker's
	// via SetRun once registration reports the authoritative one).
	Run string
	// Source names the emitting process ("mmcoord", "w1", ...).
	Source string
	// Now is the injectable clock for deterministic tests (default
	// time.Now).
	Now func() time.Time
	// RingCap bounds the in-memory tail served by WriteTail (default
	// 1024 lines).
	RingCap int
}

// New builds a journal writing NDJSON to w, stamped with run and source.
// Returns nil (a safe no-op) when telemetry is compiled out.
func New(w io.Writer, run, source string) *Journal {
	return NewWithOptions(Options{Out: w, Run: run, Source: source})
}

// NewWithOptions builds a journal with explicit options. Returns nil
// when telemetry is compiled out.
func NewWithOptions(o Options) *Journal {
	if !Enabled {
		return nil
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.RingCap <= 0 {
		o.RingCap = 1024
	}
	sink := &lineSink{out: o.Out, ring: make([][]byte, o.RingCap)}
	h := slog.NewJSONHandler(sink, &slog.HandlerOptions{
		// Events have no severity dimension — the type is the message —
		// so the level attr is noise and is dropped from every line.
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.LevelKey {
				return slog.Attr{}
			}
			return a
		},
	})
	return &Journal{h: h, sink: sink, now: o.Now, run: o.Run, src: o.Source}
}

// SetRun replaces the run ID stamped on subsequent events — workers call
// this when registration hands them the coordinator's authoritative ID.
// Nil-safe.
func (j *Journal) SetRun(run string) {
	if !Enabled || j == nil {
		return
	}
	j.mu.Lock()
	j.run = run
	j.mu.Unlock()
}

// Run returns the current run ID. Nil-safe (returns "").
func (j *Journal) Run() string {
	if !Enabled || j == nil {
		return ""
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.run
}

// Emit journals one event with no shard association. Nil-safe.
func (j *Journal) Emit(ev Type, f Fields) { j.emit(ev, -1, f) }

// EmitShard journals one event about shard (shard IDs start at 0, so
// the association is explicit rather than a zero-value sentinel).
// Nil-safe.
func (j *Journal) EmitShard(ev Type, shard int, f Fields) { j.emit(ev, shard, f) }

func (j *Journal) emit(ev Type, shard int, f Fields) {
	if !Enabled || j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	r := slog.NewRecord(j.now(), slog.LevelInfo, string(ev), 0)
	r.AddAttrs(
		slog.String("run", j.run),
		slog.String("src", j.src),
		slog.Uint64("seq", j.seq),
	)
	if shard >= 0 {
		r.AddAttrs(slog.Int("shard", shard))
	}
	if f.Worker != "" {
		r.AddAttrs(slog.String("worker", f.Worker))
	}
	if f.Span != "" {
		r.AddAttrs(slog.String("span", f.Span))
	}
	if f.Attempt != 0 {
		r.AddAttrs(slog.Int("attempt", f.Attempt))
	}
	if f.Count != 0 {
		r.AddAttrs(slog.Int("count", f.Count))
	}
	if f.States != 0 {
		r.AddAttrs(slog.Int("states", f.States))
	}
	if f.Ms != 0 {
		r.AddAttrs(slog.Int64("ms", f.Ms))
	}
	if f.Reason != "" {
		r.AddAttrs(slog.String("reason", f.Reason))
	}
	if f.Detail != "" {
		r.AddAttrs(slog.String("detail", f.Detail))
	}
	if f.Err != "" {
		r.AddAttrs(slog.String("err", f.Err))
	}
	j.h.Handle(context.Background(), r) //nolint:errcheck // sink errors are best-effort
}

// Seq returns the number of events emitted so far. Nil-safe.
func (j *Journal) Seq() uint64 {
	if !Enabled || j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// WriteTail writes up to n of the most recent journal lines (all of the
// retained tail when n <= 0) to w, oldest first — the /journal endpoint.
// Nil-safe.
func (j *Journal) WriteTail(w io.Writer, n int) error {
	if !Enabled || j == nil {
		return nil
	}
	j.mu.Lock()
	lines := j.sink.tail(n)
	j.mu.Unlock()
	for _, line := range lines {
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}

// lineSink stores each NDJSON line in a bounded ring and forwards it to
// the output writer. slog's JSONHandler delivers exactly one line per
// Write call; the Journal's mutex serializes callers, so the sink needs
// no lock of its own.
type lineSink struct {
	out  io.Writer
	ring [][]byte
	next int
	n    int
}

func (s *lineSink) Write(p []byte) (int, error) {
	line := append([]byte(nil), p...)
	s.ring[s.next] = line
	s.next = (s.next + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
	if s.out != nil {
		return s.out.Write(p)
	}
	return len(p), nil
}

// tail returns the most recent min(n, retained) lines, oldest first.
func (s *lineSink) tail(n int) [][]byte {
	if n <= 0 || n > s.n {
		n = s.n
	}
	out := make([][]byte, 0, n)
	start := s.next - n
	if start < 0 {
		start += len(s.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, s.ring[(start+i)%len(s.ring)])
	}
	return out
}
