//go:build notelemetry

package obslog

// Enabled is the compile-time off switch: with -tags notelemetry every
// journal constructor returns nil and every emit is dead code.
const Enabled = false
