package obslog

import (
	"io"
	"strings"
	"sync"
)

// Console multiplexes line-oriented output (journal events, diagnostics)
// with a single redrawn-in-place status line on one terminal stream.
// Before PR 8 the progress line and any concurrent stderr write could
// tear each other mid-line; routing both through a Console serializes
// them: every Write first clears the status line, emits the payload
// whole, and redraws the status underneath it, so NDJSON events stay
// parseable and the live line stays live.
//
// Console is plain synchronization, not instrumentation — it works the
// same under -tags notelemetry and is safe for concurrent use.
type Console struct {
	mu      sync.Mutex
	w       io.Writer
	status  string
	lastLen int
}

// NewConsole wraps a terminal-ish writer (typically os.Stderr).
func NewConsole(w io.Writer) *Console {
	return &Console{w: w}
}

// Write emits p as ordinary scrolling output, lifting the status line
// out of the way and redrawing it afterwards. Implements io.Writer so a
// Console can back a Journal or any log writer directly.
func (c *Console) Write(p []byte) (int, error) {
	if c == nil {
		return len(p), nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eraseLocked()
	n, err := c.w.Write(p)
	if err != nil {
		return n, err
	}
	if len(p) > 0 && p[len(p)-1] != '\n' {
		io.WriteString(c.w, "\n") //nolint:errcheck
	}
	c.redrawLocked()
	return n, err
}

// SetStatus replaces the in-place status line (the telemetry progress
// line calls this through a small interface, keeping the two packages
// decoupled). Nil-safe.
func (c *Console) SetStatus(line string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	pad := ""
	if n := c.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	io.WriteString(c.w, "\r"+line+pad) //nolint:errcheck
	c.status = line
	c.lastLen = len(line)
}

// ClearStatus erases the status line and forgets it. Nil-safe.
func (c *Console) ClearStatus() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eraseLocked()
	c.status = ""
	c.lastLen = 0
}

// eraseLocked blanks the rendered status line. Caller holds mu.
func (c *Console) eraseLocked() {
	if c.lastLen > 0 {
		io.WriteString(c.w, "\r"+strings.Repeat(" ", c.lastLen)+"\r") //nolint:errcheck
	}
}

// redrawLocked re-renders the remembered status line. Caller holds mu.
func (c *Console) redrawLocked() {
	if c.status != "" {
		io.WriteString(c.w, "\r"+c.status) //nolint:errcheck
		c.lastLen = len(c.status)
	}
}
