package obslog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// mergeKey is the sort key parsed off each journal line. Time orders
// events across processes (same-host wall clocks), the source name
// breaks cross-process ties deterministically, and the per-journal
// sequence number breaks same-source same-timestamp ties (fake-clock
// tests emit many events at one instant) — so a merge over any number
// of journals is a total order and re-running it is byte-stable.
type mergeKey struct {
	Time time.Time `json:"time"`
	Src  string    `json:"src"`
	Seq  uint64    `json:"seq"`
}

// MergeLines reads NDJSON journal streams and returns every line sorted
// into the single deterministic timeline. Lines must be journal-shaped
// (carry time/src/seq); a malformed line is an error, not a silent
// drop, because a merged journal with holes would misexplain a run.
// MergeLines is pure parsing — it works under -tags notelemetry, so
// mmobs can merge journals produced by instrumented builds regardless
// of its own build tags.
func MergeLines(streams ...io.Reader) ([][]byte, error) {
	type rec struct {
		key  mergeKey
		line []byte
	}
	var recs []rec
	for i, s := range streams {
		sc := bufio.NewScanner(s)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		ln := 0
		for sc.Scan() {
			ln++
			raw := sc.Bytes()
			if len(raw) == 0 {
				continue
			}
			var k mergeKey
			if err := json.Unmarshal(raw, &k); err != nil {
				return nil, fmt.Errorf("obslog: merge: stream %d line %d: %w", i, ln, err)
			}
			line := make([]byte, len(raw), len(raw)+1)
			copy(line, raw)
			recs = append(recs, rec{key: k, line: append(line, '\n')})
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("obslog: merge: stream %d: %w", i, err)
		}
	}
	sort.SliceStable(recs, func(a, b int) bool {
		ka, kb := recs[a].key, recs[b].key
		if !ka.Time.Equal(kb.Time) {
			return ka.Time.Before(kb.Time)
		}
		if ka.Src != kb.Src {
			return ka.Src < kb.Src
		}
		return ka.Seq < kb.Seq
	})
	out := make([][]byte, len(recs))
	for i, r := range recs {
		out[i] = r.line
	}
	return out, nil
}

// Merge writes the merged timeline of the given streams to w as NDJSON.
func Merge(w io.Writer, streams ...io.Reader) error {
	lines, err := MergeLines(streams...)
	if err != nil {
		return err
	}
	for _, line := range lines {
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}
