package obslog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeNow hands out strictly increasing deterministic timestamps.
func fakeNow(start time.Time, step time.Duration) func() time.Time {
	t := start
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

// TestJournalSchema: every line is one JSON object carrying the event
// type as msg plus run/src/seq, the shard association only when given,
// and no slog level noise.
func TestJournalSchema(t *testing.T) {
	if !Enabled {
		t.Skip("journal compiled out")
	}
	var buf bytes.Buffer
	j := NewWithOptions(Options{
		Out: &buf, Run: "r1", Source: "coord",
		Now: fakeNow(time.Unix(1000, 0).UTC(), time.Millisecond),
	})
	j.Emit(RunStarted, Fields{Detail: "MP/Relaxed"})
	j.EmitShard(ShardLeased, 0, Fields{Worker: "A", Span: "r1/s0/a1", Attempt: 1})
	j.EmitShard(ShardCompleted, 3, Fields{Worker: "B", States: 42, Ms: 7})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	for _, k := range []string{"time", "msg", "run", "src", "seq"} {
		if _, ok := first[k]; !ok {
			t.Errorf("line 0 missing %q: %s", k, lines[0])
		}
	}
	if _, ok := first["level"]; ok {
		t.Errorf("line 0 carries slog level noise: %s", lines[0])
	}
	if first["msg"] != string(RunStarted) {
		t.Errorf("msg = %v, want %q", first["msg"], RunStarted)
	}
	if _, ok := first["shard"]; ok {
		t.Errorf("unsharded event grew a shard field: %s", lines[0])
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	// Shard 0 is a valid ID and must survive the zero value.
	if v, ok := second["shard"]; !ok || v != float64(0) {
		t.Errorf("shard 0 event lost its shard field: %s", lines[1])
	}
	if second["span"] != "r1/s0/a1" || second["worker"] != "A" || second["attempt"] != float64(1) {
		t.Errorf("lease fields wrong: %s", lines[1])
	}
}

// TestJournalSetRun: a worker's journal adopts the coordinator's run ID
// mid-stream (registration hands it over).
func TestJournalSetRun(t *testing.T) {
	if !Enabled {
		t.Skip("journal compiled out")
	}
	var buf bytes.Buffer
	j := New(&buf, "local", "w1")
	j.Emit(WorkerRegistered, Fields{})
	j.SetRun("r9")
	j.Emit(ShardStarted, Fields{Span: "r9/s0/a1"})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if !strings.Contains(lines[0], `"run":"local"`) || !strings.Contains(lines[1], `"run":"r9"`) {
		t.Fatalf("run ID not adopted:\n%s", buf.String())
	}
	if j.Run() != "r9" {
		t.Fatalf("Run() = %q, want r9", j.Run())
	}
}

// TestJournalTail: the ring keeps the most recent lines, oldest first.
func TestJournalTail(t *testing.T) {
	if !Enabled {
		t.Skip("journal compiled out")
	}
	j := NewWithOptions(Options{Source: "x", RingCap: 4})
	for i := 0; i < 10; i++ {
		j.EmitShard(ShardRequeued, i, Fields{})
	}
	var buf bytes.Buffer
	if err := j.WriteTail(&buf, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("tail kept %d lines, want 4", len(lines))
	}
	for i, want := range []string{`"shard":6`, `"shard":7`, `"shard":8`, `"shard":9`} {
		if !strings.Contains(lines[i], want) {
			t.Errorf("tail[%d] = %s, want %s", i, lines[i], want)
		}
	}
	buf.Reset()
	if err := j.WriteTail(&buf, 2); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("bounded tail wrote %d lines, want 2", got)
	}
}

// TestMergeDeterministic: merging journals from several sources yields a
// byte-stable timeline regardless of input order, keyed by
// (time, src, seq).
func TestMergeDeterministic(t *testing.T) {
	if !Enabled {
		t.Skip("journal compiled out")
	}
	start := time.Unix(2000, 0).UTC()
	mk := func(src string, step time.Duration) *bytes.Buffer {
		var buf bytes.Buffer
		j := NewWithOptions(Options{Out: &buf, Run: "r1", Source: src, Now: fakeNow(start, step)})
		for i := 0; i < 5; i++ {
			j.EmitShard(ShardCompleted, i, Fields{Worker: src})
		}
		return &buf
	}
	a, b, c := mk("a", 3*time.Millisecond), mk("b", 2*time.Millisecond), mk("c", 3*time.Millisecond)

	m1, err := MergeLines(bytes.NewReader(a.Bytes()), bytes.NewReader(b.Bytes()), bytes.NewReader(c.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := MergeLines(bytes.NewReader(c.Bytes()), bytes.NewReader(a.Bytes()), bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.Join(m1, nil), bytes.Join(m2, nil)) {
		t.Fatal("merge order depends on input order")
	}
	// a and c tie on every timestamp; src must break the tie a-before-c.
	joined := string(bytes.Join(m1, nil))
	if strings.Index(joined, `"src":"a"`) > strings.Index(joined, `"src":"c"`) {
		t.Errorf("equal-time events not ordered by src:\n%s", joined)
	}
	if len(m1) != 15 {
		t.Fatalf("merged %d lines, want 15", len(m1))
	}
}

// TestMergeRejectsGarbage: a non-journal line is a loud error, not a
// silent drop.
func TestMergeRejectsGarbage(t *testing.T) {
	if _, err := MergeLines(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage line merged silently")
	}
}

// TestConsoleInterleave: journal lines written through a Console never
// tear the status line — each event lands whole on its own line and the
// status is redrawn after it.
func TestConsoleInterleave(t *testing.T) {
	var buf bytes.Buffer
	c := NewConsole(&buf)
	c.SetStatus("42 behaviors | 100 states")
	c.Write([]byte(`{"msg":"shard.leased"}` + "\n")) //nolint:errcheck
	c.SetStatus("43 behaviors | 120 states")
	c.ClearStatus()

	out := buf.String()
	// The event line must appear intact, bracketed by a clear and a
	// redraw of the status.
	if !strings.Contains(out, `{"msg":"shard.leased"}`+"\n") {
		t.Fatalf("event line torn: %q", out)
	}
	i := strings.Index(out, `{"msg"`)
	if !strings.Contains(out[:i], "\r") {
		t.Errorf("status not cleared before event: %q", out[:i])
	}
	if !strings.Contains(out[i:], "42 behaviors") {
		t.Errorf("status not redrawn after event: %q", out[i:])
	}
	if !strings.HasSuffix(out, "\r") {
		t.Errorf("ClearStatus left the line dirty: %q", out)
	}
}

// TestConsoleAddsNewline: a payload without a trailing newline still
// scrolls — the console terminates it so the redrawn status does not
// glue onto it.
func TestConsoleAddsNewline(t *testing.T) {
	var buf bytes.Buffer
	c := NewConsole(&buf)
	c.SetStatus("live")
	c.Write([]byte("diagnostic")) //nolint:errcheck
	if !strings.Contains(buf.String(), "diagnostic\n") {
		t.Fatalf("unterminated payload not newline-fixed: %q", buf.String())
	}
}

// TestDisabledJournalZeroAlloc: emitting against a nil journal (the
// not-configured path every engine call sees) allocates nothing.
func TestDisabledJournalZeroAlloc(t *testing.T) {
	var j *Journal
	n := testing.AllocsPerRun(1000, func() {
		j.EmitShard(ShardCompleted, 3, Fields{Worker: "w", States: 10, Ms: 5})
		j.Emit(RunDegraded, Fields{Reason: "max-behaviors"})
	})
	if n != 0 {
		t.Fatalf("nil-journal emit allocates %v per run, want 0", n)
	}
}
