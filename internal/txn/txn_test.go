package txn

import (
	"context"

	"testing"

	"storeatomicity/internal/core"
	"storeatomicity/internal/order"
	"storeatomicity/internal/program"
)

// transferProgram is the bank-transfer snapshot test: thread A atomically
// moves 10 from x to y; thread B atomically snapshots both. Initial state
// x=100, y=0; the invariant is r3 + r4 == 100.
func transferProgram() *program.Program {
	plus := func(d program.Value) program.OpFunc {
		return func(a []program.Value) program.Value { return a[0] + d }
	}
	b := program.NewBuilder()
	b.Init(program.X, 100)
	ta := b.Thread("A")
	ta.TxBegin()
	ta.LoadL("A.rx", 1, program.X)
	ta.Op(2, plus(-10), 1)
	ta.StoreReg(program.X, 2)
	ta.LoadL("A.ry", 3, program.Y)
	ta.Op(4, plus(10), 3)
	ta.StoreReg(program.Y, 4)
	ta.TxEnd()
	tb := b.Thread("B")
	tb.TxBegin()
	tb.LoadL("B.rx", 5, program.X)
	tb.LoadL("B.ry", 6, program.Y)
	tb.TxEnd()
	return b.Build()
}

func sumInvariant(e *core.Execution) bool {
	v := e.LoadValues()
	return v["B.rx"]+v["B.ry"] == 100
}

// TestTransactionalFilterRestoresInvariant: without the atomicity filter
// even SC admits torn snapshots; with it, every surviving execution
// satisfies the invariant, under SC and under the relaxed table.
func TestTransactionalFilterRestoresInvariant(t *testing.T) {
	for _, pol := range []order.Policy{order.SC(), order.Relaxed()} {
		base, err := core.Enumerate(context.Background(), transferProgram(), pol, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		torn := 0
		for _, e := range base.Executions {
			if !sumInvariant(e) {
				torn++
			}
		}
		if torn == 0 {
			t.Fatalf("%s: base enumeration shows no torn snapshot — test too weak", pol.Name())
		}
		res, dropped, err := Enumerate(context.Background(), transferProgram(), pol, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if dropped == 0 {
			t.Errorf("%s: filter dropped nothing", pol.Name())
		}
		if len(res.Executions) == 0 {
			t.Fatalf("%s: filter dropped everything", pol.Name())
		}
		for _, e := range res.Executions {
			if !sumInvariant(e) {
				t.Errorf("%s: transactional execution tears the snapshot: %s", pol.Name(), e.Key())
			}
		}
	}
}

// TestAtomicHandlesNonTransactional: executions without transactions pass
// through on plain serializability.
func TestAtomicHandlesNonTransactional(t *testing.T) {
	b := program.NewBuilder()
	b.Thread("A").StoreL("S", program.X, 1).LoadL("L", 1, program.X)
	res, err := core.Enumerate(context.Background(), b.Build(), order.SC(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Executions {
		if !Atomic(e) {
			t.Error("plain serializable execution reported non-atomic")
		}
		if len(Blocks(e)) != 0 {
			t.Error("unexpected transaction blocks")
		}
	}
}

// TestBlocksGrouping: block extraction groups by transaction across the
// right nodes.
func TestBlocksGrouping(t *testing.T) {
	res, err := core.Enumerate(context.Background(), transferProgram(), order.SC(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := res.Executions[0]
	blocks := Blocks(e)
	if len(blocks) != 2 {
		t.Fatalf("%d blocks, want 2", len(blocks))
	}
	sizes := map[int]bool{len(blocks[0]): true, len(blocks[1]): true}
	// A's transaction has 4 memory ops, B's has 2.
	if !sizes[4] || !sizes[2] {
		t.Errorf("block sizes %d and %d, want 4 and 2", len(blocks[0]), len(blocks[1]))
	}
}

// TestConflictingWritersSerialize: two transactions that both
// read-modify-write the same two locations must appear in one order or
// the other — the filter removes interleavings mixing their halves, so
// the surviving final sums are exactly the serial ones.
func TestConflictingWritersSerialize(t *testing.T) {
	addTo := func(d program.Value) program.OpFunc {
		return func(a []program.Value) program.Value { return a[0] + d }
	}
	build := func() *program.Program {
		b := program.NewBuilder()
		ta := b.Thread("A")
		ta.TxBegin()
		ta.LoadL("A.rx", 1, program.X)
		ta.Op(2, addTo(1), 1)
		ta.StoreReg(program.X, 2)
		ta.TxEnd()
		tb := b.Thread("B")
		tb.TxBegin()
		tb.LoadL("B.rx", 3, program.X)
		tb.Op(4, addTo(1), 3)
		tb.StoreReg(program.X, 4)
		tb.TxEnd()
		return b.Build()
	}
	res, dropped, err := Enumerate(context.Background(), build(), order.SC(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Error("the lost-update interleaving should have been filtered")
	}
	for _, e := range res.Executions {
		v := e.LoadValues()
		if !(v["A.rx"] == 0 && v["B.rx"] == 1) && !(v["A.rx"] == 1 && v["B.rx"] == 0) {
			t.Errorf("non-serial transactional outcome: %s", e.Key())
		}
	}
}
