// Package txn explores the paper's closing suggestion: "One may view a
// transaction as an atomic group of Load and Store operations ... It is
// worth exploring if the big-step, 'all or nothing' semantics ... can be
// explained in terms of small-step semantics using the framework provided
// in this paper."
//
// The small-step reading implemented here: enumerate executions exactly
// as the base framework does (each transactional Load and Store is an
// ordinary graph node), then keep an execution iff some serialization
// places every transaction's operations contiguously. Transactional
// atomicity is thus a *filter over serializations*, not new machinery —
// Store Atomicity already supplies the candidate interleavings.
//
// Aborted/retried transactions are out of scope (they would need the
// rollback machinery of Section 5); transactions here always commit, so
// the filter answers "which committed interleavings are transactionally
// atomic".
package txn

import (
	"context"

	"storeatomicity/internal/core"
	"storeatomicity/internal/order"
	"storeatomicity/internal/program"
	"storeatomicity/internal/serial"
)

// Blocks groups an execution's memory node IDs by transaction ID.
func Blocks(e *core.Execution) [][]int {
	byTx := map[int][]int{}
	var txIDs []int
	for _, id := range e.MemoryNodeIDs() {
		tx := e.Nodes[id].Tx()
		if tx == 0 {
			continue
		}
		if _, seen := byTx[tx]; !seen {
			txIDs = append(txIDs, tx)
		}
		byTx[tx] = append(byTx[tx], id)
	}
	out := make([][]int, 0, len(txIDs))
	for _, tx := range txIDs {
		out = append(out, byTx[tx])
	}
	return out
}

// Atomic reports whether the execution admits a serialization in which
// every transaction is contiguous.
func Atomic(e *core.Execution) bool {
	blocks := Blocks(e)
	if len(blocks) == 0 {
		_, err := serial.Witness(e)
		return err == nil
	}
	_, err := serial.WitnessBlocks(e, blocks)
	return err == nil
}

// Enumerate runs the base enumeration and keeps only transactionally
// atomic executions. The returned Result shares the base Stats, with the
// filtered-out count reported separately.
func Enumerate(ctx context.Context, p *program.Program, pol order.Policy, opts core.Options) (*core.Result, int, error) {
	res, err := core.Enumerate(ctx, p, pol, opts)
	if err != nil {
		return nil, 0, err
	}
	kept := res.Executions[:0]
	dropped := 0
	for _, e := range res.Executions {
		if Atomic(e) {
			kept = append(kept, e)
		} else {
			dropped++
		}
	}
	res.Executions = kept
	return res, dropped, nil
}
