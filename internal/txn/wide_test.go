package txn

import (
	"context"

	"testing"

	"storeatomicity/internal/core"
	"storeatomicity/internal/order"
	"storeatomicity/internal/program"
)

// This file covers the remaining conclusions item: "we assumed all reads
// and writes accessed fixed-size, aligned words; in practice, loads and
// stores occur at many granularities ... A faithful model can potentially
// match a Load up with several Store operations, each providing a portion
// of the data being read."
//
// The reproduction desugars a wide (two-cell) access into two unit
// accesses. Un-annotated, the model then naturally exhibits *torn* wide
// reads — a wide load matched up with halves of two different wide
// stores — which is the paper's "several Store operations" scenario.
// Declaring each wide access an atomic block (the transaction machinery)
// restores single-copy atomicity.

// wideProgram: thread A performs two wide stores {10,11} then {20,21}
// across cells X and Y; thread B performs one wide load. atomic selects
// whether the wide accesses are wrapped as atomic blocks.
func wideProgram(atomic bool) *program.Program {
	b := program.NewBuilder()
	ta := b.Thread("A")
	if atomic {
		ta.TxBegin()
	}
	ta.StoreL("S1.lo", program.X, 10).StoreL("S1.hi", program.Y, 11)
	if atomic {
		ta.TxEnd().TxBegin()
	}
	ta.StoreL("S2.lo", program.X, 20).StoreL("S2.hi", program.Y, 21)
	if atomic {
		ta.TxEnd()
	}
	tb := b.Thread("B")
	if atomic {
		tb.TxBegin()
	}
	tb.LoadL("L.lo", 1, program.X).LoadL("L.hi", 2, program.Y)
	if atomic {
		tb.TxEnd()
	}
	return b.Build()
}

// torn reports whether the wide load halves come from different wide
// stores (or one half from the initial value and one from a store).
func torn(lo, hi program.Value) bool {
	pairs := map[program.Value]program.Value{0: 0, 10: 11, 20: 21}
	want, ok := pairs[lo]
	return !ok || hi != want
}

// TestWideLoadsTearWithoutAtomicity: the desugared model produces torn
// wide reads even under SC — one load observes S1's half, the other S2's.
func TestWideLoadsTearWithoutAtomicity(t *testing.T) {
	res, err := core.Enumerate(context.Background(), wideProgram(false), order.SC(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sawTorn := false
	for _, e := range res.Executions {
		v := e.LoadValues()
		if torn(v["L.lo"], v["L.hi"]) {
			sawTorn = true
		}
	}
	if !sawTorn {
		t.Error("no torn wide read under SC — desugaring should expose them")
	}
}

// TestWideAtomicityRestoredByBlocks: with each wide access an atomic
// block, every surviving execution reads a consistent pair, under SC and
// under the relaxed table.
func TestWideAtomicityRestoredByBlocks(t *testing.T) {
	for _, pol := range []order.Policy{order.SC(), order.Relaxed()} {
		res, dropped, err := Enumerate(context.Background(), wideProgram(true), pol, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if dropped == 0 {
			t.Errorf("%s: atomic blocks filtered nothing", pol.Name())
		}
		if len(res.Executions) == 0 {
			t.Fatalf("%s: everything filtered", pol.Name())
		}
		for _, e := range res.Executions {
			v := e.LoadValues()
			if torn(v["L.lo"], v["L.hi"]) {
				t.Errorf("%s: torn wide read survived: lo=%d hi=%d", pol.Name(), v["L.lo"], v["L.hi"])
			}
		}
	}
}

// TestWideLoadMatchesSeveralStores pins the paper's exact phrasing: in
// some torn execution the wide load's halves name two different store
// instructions as sources.
func TestWideLoadMatchesSeveralStores(t *testing.T) {
	res, err := core.Enumerate(context.Background(), wideProgram(false), order.SC(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Executions {
		src := e.LoadSources()
		if src["L.lo"] == "S1.lo" && src["L.hi"] == "S2.hi" {
			return // one load, portions from two stores
		}
	}
	t.Error("no execution matched the wide load against two different stores")
}
