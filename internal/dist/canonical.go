package dist

import (
	"sort"
	"strings"

	"storeatomicity/internal/core"
)

// Canonical renders a result's behavior set as one sorted string — one
// "sourceKey => outcomeKey" line per execution — so two results can be
// compared for bit-identity regardless of the engine (sequential,
// parallel, or distributed-and-merged) or discovery order that produced
// them. The distributed headline claim is exactly Canonical(distributed)
// == Canonical(sequential).
func Canonical(res *core.Result) string {
	lines := make([]string, 0, len(res.Executions))
	for _, e := range res.Executions {
		lines = append(lines, e.SourceKey()+" => "+e.Key())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
