// Package dist is the fault-tolerant distributed enumeration layer: a
// coordinator partitions the behavior tree into replayable-path shards
// (core.PartitionFrontier) and hands them to worker processes over a
// small HTTP/JSON protocol, with lease-based shard ownership, worker
// heartbeats, capped-exponential retry with jitter on every
// worker→coordinator call, idempotent result submission keyed by shard
// ID, and a batched dedup-fingerprint exchange. When workers are lost
// past a deadline the coordinator degrades to a structured
// core.Incomplete report whose frontier is the unfinished shards.
//
// The protocol is deliberately minimal — five POST endpoints carrying
// JSON bodies, stdlib only, mirroring internal/telemetry's server
// idioms. Everything the worker needs to reproduce the computation
// (test, model, options) travels in the registration response, and the
// coordinator validates the worker's program hash so a version- or
// flag-skewed worker is rejected instead of silently corrupting the
// merge.
package dist

import (
	"fmt"

	"storeatomicity/internal/cli"
	"storeatomicity/internal/core"
	"storeatomicity/internal/litmus"
)

// Protocol endpoints (all POST, JSON request/response bodies).
const (
	PathRegister  = "/register"
	PathLease     = "/lease"
	PathHeartbeat = "/heartbeat"
	PathComplete  = "/complete"
	PathStatus    = "/status"
)

// JobSpec describes the enumeration a coordinator is running, in the
// registry vocabulary (test and model names) so it serializes cleanly.
type JobSpec struct {
	// Test names a litmus.Registry entry.
	Test string `json:"test"`
	// Model names a litmus.Models entry ("Relaxed", "TSO", ...).
	Model string `json:"model"`
	// ProgramHash fingerprints the built program; a worker whose build
	// disagrees is refused (version skew).
	ProgramHash uint64 `json:"program_hash"`
	// Prune/COW/DedupMem carry the engine flag grammars (cli.ApplyPrune
	// and friends) so every worker runs the same configuration.
	Prune    string `json:"prune,omitempty"`
	COW      string `json:"cow,omitempty"`
	DedupMem string `json:"dedup_mem,omitempty"`
	// MaxNodes/MaxBehaviors bound each shard run (0 = engine default).
	MaxNodes     int `json:"max_nodes,omitempty"`
	MaxBehaviors int `json:"max_behaviors,omitempty"`
}

// Resolve materializes the spec: the litmus test, the model, and the
// engine options (with Speculative forced by the model, like
// litmus.RunContext).
func (j *JobSpec) Resolve() (*litmus.Test, litmus.Model, core.Options, error) {
	var opts core.Options
	t, ok := litmus.ByName(j.Test)
	if !ok {
		return nil, litmus.Model{}, opts, fmt.Errorf("dist: unknown test %q", j.Test)
	}
	m, ok := litmus.ModelByName(j.Model)
	if !ok {
		return nil, litmus.Model{}, opts, fmt.Errorf("dist: unknown model %q", j.Model)
	}
	if err := cli.ApplyPrune(&opts, j.Prune); err != nil {
		return nil, litmus.Model{}, opts, fmt.Errorf("dist: job spec: %w", err)
	}
	if err := cli.ApplyCOW(&opts, j.COW); err != nil {
		return nil, litmus.Model{}, opts, fmt.Errorf("dist: job spec: %w", err)
	}
	if err := cli.ApplyDedupMem(&opts, j.DedupMem); err != nil {
		return nil, litmus.Model{}, opts, fmt.Errorf("dist: job spec: %w", err)
	}
	opts.MaxNodes = j.MaxNodes
	opts.MaxBehaviors = j.MaxBehaviors
	opts.Speculative = m.Speculative
	return t, m, opts, nil
}

// RegisterRequest announces a worker.
type RegisterRequest struct {
	Worker      string `json:"worker"`
	ProgramHash uint64 `json:"program_hash,omitempty"`
}

// RegisterResponse hands the worker its job and the lease discipline.
type RegisterResponse struct {
	Job             JobSpec `json:"job"`
	LeaseMillis     int64   `json:"lease_ms"`
	HeartbeatMillis int64   `json:"heartbeat_ms"`
}

// LeaseRequest asks for a shard. FpSeq is the index into the
// coordinator's fingerprint log the worker has already consumed, so the
// exchange ships only fresh batches.
type LeaseRequest struct {
	Worker string `json:"worker"`
	FpSeq  int    `json:"fp_seq"`
	// ProgramHash re-states the worker's program on every lease, so a
	// stale worker that registered with an earlier coordinator (say,
	// after a restart on the same port) cannot pull shards for a program
	// it does not have. Zero skips the check (old workers).
	ProgramHash uint64 `json:"program_hash,omitempty"`
}

// LeaseResponse grants a shard, asks the worker to wait, or announces
// completion.
type LeaseResponse struct {
	// Done: every shard is accounted for; the worker should exit.
	Done bool `json:"done,omitempty"`
	// Wait: nothing grantable right now (all leased), retry after
	// RetryMillis.
	Wait        bool  `json:"wait,omitempty"`
	RetryMillis int64 `json:"retry_ms,omitempty"`
	// Shard identifies the granted work unit; Path replays to it.
	Shard       int             `json:"shard"`
	Path        []core.PathStep `json:"path"`
	LeaseMillis int64           `json:"lease_ms,omitempty"`
	// Fingerprints is the fresh slice of the dedup exchange log
	// starting at the worker's FpSeq; FpNext is the new consumed index.
	Fingerprints []uint64 `json:"fingerprints,omitempty"`
	FpNext       int      `json:"fp_next"`
}

// HeartbeatRequest keeps a worker's leases alive.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
}

// HeartbeatResponse acknowledges; Done tells the worker the run is over.
type HeartbeatResponse struct {
	Done bool `json:"done,omitempty"`
}

// CompleteRequest submits a shard's results. Idempotent by Shard: the
// first submission wins, later ones are acknowledged as duplicates.
type CompleteRequest struct {
	Worker string `json:"worker"`
	Shard  int    `json:"shard"`
	// ProgramHash guards the merge the same way LeaseRequest's does: a
	// submission built from a different program is refused, not merged.
	ProgramHash uint64 `json:"program_hash,omitempty"`
	// Completed holds the replayable path of every behavior the shard
	// found (for the coordinator's merge).
	Completed [][]core.PathStep `json:"completed"`
	// Fingerprints exports the shard's dedup seen-set for the exchange
	// (clean completions only).
	Fingerprints   []uint64 `json:"fingerprints,omitempty"`
	StatesExplored int      `json:"states_explored"`
	// Incomplete reports a shard that stopped early (budget, panic).
	// The coordinator latches it and degrades the final result.
	Incomplete *core.Incomplete `json:"incomplete,omitempty"`
}

// CompleteResponse acknowledges a submission.
type CompleteResponse struct {
	OK bool `json:"ok"`
	// Duplicate: this shard was already completed (by this worker after
	// a lease expiry, or by a reassigned peer); the submission was
	// discarded without double-counting.
	Duplicate bool `json:"duplicate,omitempty"`
}

// StatusResponse is the coordinator's public progress snapshot.
type StatusResponse struct {
	Shards    int  `json:"shards"`
	Completed int  `json:"completed"`
	Pending   int  `json:"pending"`
	Workers   int  `json:"workers"`
	Done      bool `json:"done"`
	Degraded  bool `json:"degraded"`
}
