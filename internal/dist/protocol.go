// Package dist is the fault-tolerant distributed enumeration layer: a
// coordinator partitions the behavior tree into replayable-path shards
// (core.PartitionFrontier) and hands them to worker processes over a
// small HTTP/JSON protocol, with lease-based shard ownership, worker
// heartbeats, capped-exponential retry with jitter on every
// worker→coordinator call, idempotent result submission keyed by shard
// ID, and a batched dedup-fingerprint exchange. When workers are lost
// past a deadline the coordinator degrades to a structured
// core.Incomplete report whose frontier is the unfinished shards.
//
// The protocol is deliberately minimal — five POST endpoints carrying
// JSON bodies, stdlib only, mirroring internal/telemetry's server
// idioms. Everything the worker needs to reproduce the computation
// (test, model, options) travels in the registration response, and the
// coordinator validates the worker's program hash so a version- or
// flag-skewed worker is rejected instead of silently corrupting the
// merge.
package dist

import (
	"fmt"

	"storeatomicity/internal/cli"
	"storeatomicity/internal/core"
	"storeatomicity/internal/litmus"
	"storeatomicity/internal/telemetry"
)

// Protocol endpoints (all POST, JSON request/response bodies, except
// the GET observability endpoints: /status serves the run ledger,
// /journal the NDJSON event tail, /metrics the Prometheus exposition).
const (
	PathRegister  = "/register"
	PathLease     = "/lease"
	PathHeartbeat = "/heartbeat"
	PathComplete  = "/complete"
	PathStatus    = "/status"
	PathJournal   = "/journal"
	PathMetrics   = "/metrics"
)

// JobSpec describes the enumeration a coordinator is running, in the
// registry vocabulary (test and model names) so it serializes cleanly.
type JobSpec struct {
	// Test names a litmus.Registry entry.
	Test string `json:"test"`
	// Model names a litmus.Models entry ("Relaxed", "TSO", ...).
	Model string `json:"model"`
	// ProgramHash is the canonical request fingerprint
	// (core.ProgramFingerprint over model + built program + behavior-set
	// options — the same key internal/serve memoizes by); a worker whose
	// build disagrees is refused (version skew).
	ProgramHash uint64 `json:"program_hash"`
	// Prune/COW/DedupMem carry the engine flag grammars (cli.ApplyPrune
	// and friends) so every worker runs the same configuration.
	Prune    string `json:"prune,omitempty"`
	COW      string `json:"cow,omitempty"`
	DedupMem string `json:"dedup_mem,omitempty"`
	// FrontierResident carries the -frontier-resident grammar
	// (cli.ApplyFrontierResident): the resident-frontier byte budget each
	// worker runs its shards under. Empty means off — NOT auto — so specs
	// serialized by pre-frontier coordinators resolve to the engine they
	// were built against.
	FrontierResident string `json:"frontier_resident,omitempty"`
	// MaxNodes/MaxBehaviors bound each shard run (0 = engine default).
	MaxNodes     int `json:"max_nodes,omitempty"`
	MaxBehaviors int `json:"max_behaviors,omitempty"`
}

// Resolve materializes the spec: the litmus test, the model, and the
// engine options (with Speculative forced by the model, like
// litmus.RunContext).
func (j *JobSpec) Resolve() (*litmus.Test, litmus.Model, core.Options, error) {
	var opts core.Options
	t, ok := litmus.ByName(j.Test)
	if !ok {
		return nil, litmus.Model{}, opts, fmt.Errorf("dist: unknown test %q", j.Test)
	}
	m, ok := litmus.ModelByName(j.Model)
	if !ok {
		return nil, litmus.Model{}, opts, fmt.Errorf("dist: unknown model %q", j.Model)
	}
	if err := cli.ApplyPrune(&opts, j.Prune); err != nil {
		return nil, litmus.Model{}, opts, fmt.Errorf("dist: job spec: %w", err)
	}
	if err := cli.ApplyCOW(&opts, j.COW); err != nil {
		return nil, litmus.Model{}, opts, fmt.Errorf("dist: job spec: %w", err)
	}
	if err := cli.ApplyDedupMem(&opts, j.DedupMem); err != nil {
		return nil, litmus.Model{}, opts, fmt.Errorf("dist: job spec: %w", err)
	}
	if err := cli.ApplyFrontierResident(&opts, j.FrontierResident); err != nil {
		return nil, litmus.Model{}, opts, fmt.Errorf("dist: job spec: %w", err)
	}
	opts.MaxNodes = j.MaxNodes
	opts.MaxBehaviors = j.MaxBehaviors
	opts.Speculative = m.Speculative
	return t, m, opts, nil
}

// RegisterRequest announces a worker.
type RegisterRequest struct {
	Worker      string `json:"worker"`
	ProgramHash uint64 `json:"program_hash,omitempty"`
}

// RegisterResponse hands the worker its job, the lease discipline, and
// the run ID every journal event and trace must carry.
type RegisterResponse struct {
	Job             JobSpec `json:"job"`
	LeaseMillis     int64   `json:"lease_ms"`
	HeartbeatMillis int64   `json:"heartbeat_ms"`
	// RunID is the coordinator's authoritative run identity; workers
	// stamp it on their journals and traces so N processes' output
	// merges into one timeline.
	RunID string `json:"run_id,omitempty"`
}

// LeaseRequest asks for a shard. FpSeq is the index into the
// coordinator's fingerprint log the worker has already consumed, so the
// exchange ships only fresh batches.
type LeaseRequest struct {
	Worker string `json:"worker"`
	FpSeq  int    `json:"fp_seq"`
	// ProgramHash re-states the worker's program on every lease, so a
	// stale worker that registered with an earlier coordinator (say,
	// after a restart on the same port) cannot pull shards for a program
	// it does not have. Zero skips the check (old workers).
	ProgramHash uint64 `json:"program_hash,omitempty"`
}

// LeaseResponse grants a shard, asks the worker to wait, or announces
// completion.
type LeaseResponse struct {
	// Done: every shard is accounted for; the worker should exit.
	Done bool `json:"done,omitempty"`
	// Wait: nothing grantable right now (all leased), retry after
	// RetryMillis.
	Wait        bool  `json:"wait,omitempty"`
	RetryMillis int64 `json:"retry_ms,omitempty"`
	// Shard identifies the granted work unit; Path replays to it.
	Shard       int             `json:"shard"`
	Path        []core.PathStep `json:"path"`
	LeaseMillis int64           `json:"lease_ms,omitempty"`
	// Fingerprints is the fresh slice of the dedup exchange log
	// starting at the worker's FpSeq; FpNext is the new consumed index.
	Fingerprints []uint64 `json:"fingerprints,omitempty"`
	FpNext       int      `json:"fp_next"`
	// SpanID identifies this lease attempt ("run/s<shard>/a<attempt>").
	// The worker stamps it on its journal events and trace spans and
	// echoes it in CompleteRequest, so one attempt correlates across
	// coordinator and worker output.
	SpanID string `json:"span_id,omitempty"`
	// Attempt is the shard's 1-based lease attempt count.
	Attempt int `json:"attempt,omitempty"`
}

// HeartbeatRequest keeps a worker's leases alive. Metrics piggybacks a
// compact snapshot of the worker's counters; the coordinator folds the
// live fleet's snapshots into the dist_fleet_* aggregation series.
type HeartbeatRequest struct {
	Worker  string             `json:"worker"`
	Metrics telemetry.Snapshot `json:"metrics,omitempty"`
}

// HeartbeatResponse acknowledges; Done tells the worker the run is over.
type HeartbeatResponse struct {
	Done bool `json:"done,omitempty"`
}

// CompleteRequest submits a shard's results. Idempotent by Shard: the
// first submission wins, later ones are acknowledged as duplicates.
type CompleteRequest struct {
	Worker string `json:"worker"`
	Shard  int    `json:"shard"`
	// ProgramHash guards the merge the same way LeaseRequest's does: a
	// submission built from a different program is refused, not merged.
	ProgramHash uint64 `json:"program_hash,omitempty"`
	// Completed holds the replayable path of every behavior the shard
	// found (for the coordinator's merge).
	Completed [][]core.PathStep `json:"completed"`
	// Fingerprints exports the shard's dedup seen-set for the exchange
	// (clean completions only).
	Fingerprints   []uint64 `json:"fingerprints,omitempty"`
	StatesExplored int      `json:"states_explored"`
	// Incomplete reports a shard that stopped early (budget, panic).
	// The coordinator latches it and degrades the final result.
	Incomplete *core.Incomplete `json:"incomplete,omitempty"`
	// SpanID echoes the lease's span ID, closing the cross-process
	// correlation loop for this attempt.
	SpanID string `json:"span_id,omitempty"`
}

// CompleteResponse acknowledges a submission.
type CompleteResponse struct {
	OK bool `json:"ok"`
	// Duplicate: this shard was already completed (by this worker after
	// a lease expiry, or by a reassigned peer); the submission was
	// discarded without double-counting.
	Duplicate bool `json:"duplicate,omitempty"`
}

// ShardLedger is one row of the /status shard table.
type ShardLedger struct {
	ID       int    `json:"id"`
	State    string `json:"state"` // queued | leased | done
	Owner    string `json:"owner,omitempty"`
	Attempts int    `json:"attempts"`
	// Span is the current (or final) attempt's span ID.
	Span string `json:"span,omitempty"`
	// Behaviors/Explored/LatencyMs are filled once the shard is done.
	Behaviors int   `json:"behaviors,omitempty"`
	Explored  int   `json:"explored,omitempty"`
	LatencyMs int64 `json:"latency_ms,omitempty"`
}

// WorkerLedger is one row of the /status worker table.
type WorkerLedger struct {
	ID string `json:"id"`
	// State is live, missed (silent past ~2 heartbeats), or lost
	// (silent past the worker TTL; its leases will expire).
	State string `json:"state"`
	// LastSeenMs is milliseconds since the worker's last contact.
	LastSeenMs int64 `json:"last_seen_ms"`
	ShardsDone int   `json:"shards_done"`
	// Retries/Explored come from the worker's heartbeat snapshot.
	Retries  int64 `json:"retries,omitempty"`
	Explored int64 `json:"explored,omitempty"`
}

// LatencySummary carries estimated shard-latency quantiles.
type LatencySummary struct {
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// StatusResponse is the coordinator's public progress snapshot — since
// PR 8, a full run ledger: the original counters plus per-shard and
// per-worker tables, the degradation reason, and shard-latency
// quantiles. The original fields keep their names so pre-ledger
// clients still parse it.
type StatusResponse struct {
	Shards    int  `json:"shards"`
	Completed int  `json:"completed"`
	Pending   int  `json:"pending"`
	Workers   int  `json:"workers"`
	Done      bool `json:"done"`
	Degraded  bool `json:"degraded"`

	RunID          string          `json:"run_id,omitempty"`
	DegradedReason string          `json:"degraded_reason,omitempty"`
	ShardTable     []ShardLedger   `json:"shard_table,omitempty"`
	WorkerTable    []WorkerLedger  `json:"worker_table,omitempty"`
	ShardLatency   *LatencySummary `json:"shard_latency,omitempty"`
}
