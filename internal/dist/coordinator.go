package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"storeatomicity/internal/core"
	"storeatomicity/internal/obslog"
	"storeatomicity/internal/order"
	"storeatomicity/internal/program"
	"storeatomicity/internal/telemetry"
)

// Config tunes a coordinator.
type Config struct {
	// Listen is the HTTP listen address ("127.0.0.1:0" picks a free
	// port; Addr reports it).
	Listen string
	// Job describes the enumeration to distribute.
	Job JobSpec
	// Lease is how long a granted shard stays owned without a heartbeat
	// (default 10s). Expired leases return to the queue.
	Lease time.Duration
	// Heartbeat is the interval workers are told to heartbeat at
	// (default Lease/3). Each heartbeat renews every lease its worker
	// holds.
	Heartbeat time.Duration
	// WorkerDeadline bounds how long the coordinator waits with pending
	// shards and no worker contact before degrading to an Incomplete
	// result (default 1m; <0 disables degradation).
	WorkerDeadline time.Duration
	// Shards is the partition target (default 16). The partition may
	// come back smaller when the tree is narrow.
	Shards int
	// FingerprintBatch caps fingerprints shipped per lease response
	// (default 8192); the exchange log is consumed in batches across
	// successive leases.
	FingerprintBatch int
	// Metrics, when non-nil, receives coordinator counters and the
	// per-shard latency histogram.
	Metrics *telemetry.DistMetrics
	// Journal, when non-nil, receives the coordinator's structured
	// event stream (shard lifecycle, worker membership, degradations)
	// and backs the GET /journal endpoint.
	Journal *obslog.Journal
	// Tracer, when non-nil, records one lease-to-completion span per
	// shard attempt on the coordinator's timeline, stamped with the
	// attempt's span ID so mmobs can match it to the worker's lane.
	Tracer *telemetry.Tracer
	// Fleet, when non-nil, aggregates the workers' heartbeat metric
	// snapshots into the fleet-wide dist_fleet_* series.
	Fleet *telemetry.FleetMetrics
	// Registry, when non-nil, is served as Prometheus text on
	// GET /metrics alongside the protocol (one port for everything).
	Registry *telemetry.Registry
	// RunID names the run; journals and traces from every process carry
	// it. Empty derives one from the clock.
	RunID string

	// now is the injectable clock for deterministic lease tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Lease <= 0 {
		c.Lease = 10 * time.Second
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = c.Lease / 3
	}
	if c.WorkerDeadline == 0 {
		c.WorkerDeadline = time.Minute
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.FingerprintBatch <= 0 {
		c.FingerprintBatch = 8192
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// shard state machine: queued → leased → done, with leased → queued on
// lease expiry. done is terminal — late submissions for a done shard are
// acknowledged as duplicates, which is what makes reassignment safe.
type shardStatus int

const (
	shardQueued shardStatus = iota
	shardLeased
	shardDone
)

// shard is one replayable work unit and its bookkeeping.
type shard struct {
	id   int
	path []core.PathStep

	status   shardStatus
	owner    string
	leaseExp time.Time
	leasedAt time.Time
	attempts int
	span     string // current (or final) attempt's span ID

	completed [][]core.PathStep // results, once done
	explored  int
	latencyMs int64 // lease-to-completion, once done
}

func (s shardStatus) String() string {
	switch s {
	case shardQueued:
		return "queued"
	case shardLeased:
		return "leased"
	case shardDone:
		return "done"
	}
	return fmt.Sprintf("shardStatus(%d)", int(s))
}

// worker liveness, as the sweep classifies it from heartbeat silence.
type workerState int

const (
	workerLive   workerState = iota
	workerMissed             // silent past ~2 heartbeat intervals
	workerLost               // silent past the 3-heartbeat TTL
)

func (w workerState) String() string {
	switch w {
	case workerLive:
		return "live"
	case workerMissed:
		return "missed"
	case workerLost:
		return "lost"
	}
	return fmt.Sprintf("workerState(%d)", int(w))
}

// workerInfo is the coordinator's view of one worker: last contact, the
// sweep's liveness classification, the latest heartbeat metric
// snapshot, and completion credit for the ledger.
type workerInfo struct {
	lastSeen   time.Time
	state      workerState
	snap       telemetry.Snapshot
	shardsDone int
}

// Coordinator owns the shard table and the merge. Every mutation runs
// under mu; the HTTP handlers are thin JSON shims over the typed
// methods (register/lease/heartbeat/complete), which the deterministic
// tests call directly with a fake clock.
type Coordinator struct {
	cfg  Config
	prog *program.Program
	pol  order.Policy
	opts core.Options
	met  *telemetry.DistMetrics

	ln  net.Listener
	srv *http.Server

	mu     sync.Mutex
	shards []*shard
	queue  []int // queued shard ids, FIFO
	runID  string

	workers     map[string]*workerInfo
	lastContact time.Time

	baseCompleted [][]core.PathStep // partition-time completions
	explored      int

	fpLog  []uint64
	fpSeen map[uint64]struct{}

	spillDegraded []string
	// degradedReason/Cause latch the first degradation (a lost fleet or
	// a worker-reported incomplete shard); extraFrontier carries frontier
	// paths reported by incomplete shards.
	degradedReason core.IncompleteReason
	degradedCause  error
	extraFrontier  [][]core.PathStep

	done     chan struct{}
	finished bool

	sweepStop chan struct{}
	sweepWG   sync.WaitGroup
}

// NewCoordinator resolves the job, partitions the frontier, and returns
// a coordinator ready to Start (or to drive directly in tests).
func NewCoordinator(ctx context.Context, cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	t, m, opts, err := cfg.Job.Resolve()
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		pol:     m.Policy,
		opts:    opts,
		met:     cfg.Metrics,
		workers: map[string]*workerInfo{},
		fpSeen:  map[uint64]struct{}{},
		done:    make(chan struct{}),
	}
	c.runID = cfg.RunID
	if c.runID == "" {
		// Derived from the (injectable) clock, so fake-clock tests get
		// a deterministic run identity.
		c.runID = fmt.Sprintf("r%08x", uint32(cfg.now().UnixNano()))
	}
	c.cfg.Journal.SetRun(c.runID)
	c.cfg.Tracer.SetMeta("run_id", c.runID)
	c.cfg.Tracer.SetMeta("role", "coordinator")
	c.prog = t.Build()
	c.cfg.Job.ProgramHash = core.ProgramFingerprint(cfg.Job.Model, c.prog, c.opts)
	c.cfg.Journal.Emit(obslog.RunStarted, obslog.Fields{
		Detail: fmt.Sprintf("%s/%s", cfg.Job.Test, cfg.Job.Model),
	})
	part, err := core.PartitionFrontier(ctx, c.prog, c.pol, c.opts, cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("dist: partition: %w", err)
	}
	c.baseCompleted = part.Completed
	c.explored = part.StatesExplored
	for i, path := range part.Shards {
		c.shards = append(c.shards, &shard{id: i, path: path})
		c.queue = append(c.queue, i)
	}
	c.lastContact = cfg.now()
	if c.met != nil {
		c.met.ShardsTotal.Set(int64(len(c.shards)))
	}
	c.cfg.Journal.Emit(obslog.RunPartitioned, obslog.Fields{
		Count: len(c.shards), States: part.StatesExplored,
	})
	if len(c.shards) == 0 {
		// The whole tree completed during partitioning; nothing to
		// distribute.
		c.finish()
	}
	return c, nil
}

// RunID returns the run identity stamped on every journal event and
// trace of this run.
func (c *Coordinator) RunID() string { return c.runID }

// Start binds the listener, serves the protocol, and runs the lease
// sweeper until Close.
func (c *Coordinator) Start() error {
	ln, err := net.Listen("tcp", c.cfg.Listen)
	if err != nil {
		return fmt.Errorf("dist: listen %s: %w", c.cfg.Listen, err)
	}
	c.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc(PathRegister, handleJSON(c.handleRegister))
	mux.HandleFunc(PathLease, handleJSON(c.handleLease))
	mux.HandleFunc(PathHeartbeat, handleJSON(c.handleHeartbeat))
	mux.HandleFunc(PathComplete, handleJSON(c.handleComplete))
	mux.HandleFunc(PathStatus, func(w http.ResponseWriter, _ *http.Request) {
		st := c.Status()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&st) //nolint:errcheck
	})
	mux.HandleFunc(PathJournal, func(w http.ResponseWriter, r *http.Request) {
		// NDJSON tail of the coordinator's event journal. ?n bounds the
		// line count (default: the whole retained ring).
		n := 0
		if v := r.URL.Query().Get("n"); v != "" {
			fmt.Sscanf(v, "%d", &n) //nolint:errcheck
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		c.cfg.Journal.WriteTail(w, n) //nolint:errcheck
	})
	if c.cfg.Registry != nil {
		mux.HandleFunc(PathMetrics, func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			c.cfg.Registry.WritePrometheus(w)
		})
	}
	c.srv = &http.Server{Handler: mux}
	go c.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close

	c.sweepStop = make(chan struct{})
	c.sweepWG.Add(1)
	go func() {
		defer c.sweepWG.Done()
		tick := c.cfg.Lease / 4
		if hb := c.cfg.Heartbeat / 2; hb < tick {
			tick = hb
		}
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-c.sweepStop:
				return
			case <-t.C:
				c.sweep(c.cfg.now())
			}
		}
	}()
	return nil
}

// Addr returns the bound listen address (with the resolved port).
func (c *Coordinator) Addr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Close tears the server and sweeper down. Safe to call after a Wait.
func (c *Coordinator) Close() error {
	if c.sweepStop != nil {
		close(c.sweepStop)
		c.sweepWG.Wait()
		c.sweepStop = nil
	}
	if c.srv != nil {
		c.srv.SetKeepAlivesEnabled(false)
		err := c.srv.Close()
		c.srv = nil
		return err
	}
	return nil
}

// handleJSON adapts a typed request/response method to an HTTP handler.
func handleJSON[Req, Resp any](f func(*Req) (*Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := f(&req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp) //nolint:errcheck
	}
}

// touch records worker contact, reviving a missed/lost classification
// (a late worker that comes back is live again — its leases may be
// gone, but its calls are honest). Caller holds mu.
func (c *Coordinator) touch(worker string) *workerInfo {
	now := c.cfg.now()
	wi := c.workers[worker]
	if wi == nil {
		wi = &workerInfo{}
		c.workers[worker] = wi
	}
	wi.lastSeen = now
	wi.state = workerLive
	c.lastContact = now
	if c.met != nil {
		live := 0
		ttl := 3 * c.cfg.Heartbeat
		for _, w := range c.workers {
			if now.Sub(w.lastSeen) <= ttl {
				live++
			}
		}
		c.met.WorkersLive.Set(int64(live))
	}
	return wi
}

// updateFleetLocked recomputes the dist_fleet_* aggregation from the
// live workers' latest heartbeat snapshots. Caller holds mu.
func (c *Coordinator) updateFleetLocked() {
	if c.cfg.Fleet == nil {
		return
	}
	var snaps []telemetry.Snapshot
	for _, wi := range c.workers {
		if wi.state == workerLive && wi.snap != nil {
			snaps = append(snaps, wi.snap)
		}
	}
	c.cfg.Fleet.Update(snaps)
}

// checkHash refuses program-hash skew: a worker built from different
// source — or one still talking to this port from a previous run —
// would merge garbage silently. Zero (an old worker not stating its
// hash) skips the check. Caller holds mu.
func (c *Coordinator) checkHash(worker string, hash uint64) error {
	if hash != 0 && hash != c.cfg.Job.ProgramHash {
		return fmt.Errorf("dist: worker %s program hash %#x does not match job %#x (version skew?)",
			worker, hash, c.cfg.Job.ProgramHash)
	}
	return nil
}

// handleRegister admits a worker.
func (c *Coordinator) handleRegister(req *RegisterRequest) (*RegisterResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkHash(req.Worker, req.ProgramHash); err != nil {
		return nil, err
	}
	if _, known := c.workers[req.Worker]; !known {
		c.cfg.Journal.Emit(obslog.WorkerRegistered, obslog.Fields{Worker: req.Worker})
	} else {
		// Same ID re-registering: a chaos respawn (or restart) of a
		// worker we already met.
		c.cfg.Journal.Emit(obslog.WorkerRespawned, obslog.Fields{Worker: req.Worker})
	}
	c.touch(req.Worker)
	return &RegisterResponse{
		Job:             c.cfg.Job,
		LeaseMillis:     c.cfg.Lease.Milliseconds(),
		HeartbeatMillis: c.cfg.Heartbeat.Milliseconds(),
		RunID:           c.runID,
	}, nil
}

// handleLease grants the oldest queued shard, or tells the worker to
// wait (all leased) or exit (run over). The response piggybacks the
// fresh slice of the fingerprint-exchange log.
func (c *Coordinator) handleLease(req *LeaseRequest) (*LeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkHash(req.Worker, req.ProgramHash); err != nil {
		return nil, err
	}
	c.touch(req.Worker)
	resp := &LeaseResponse{FpNext: req.FpSeq}
	// Batch of the exchange log the worker has not seen yet.
	if req.FpSeq >= 0 && req.FpSeq < len(c.fpLog) {
		end := req.FpSeq + c.cfg.FingerprintBatch
		if end > len(c.fpLog) {
			end = len(c.fpLog)
		}
		resp.Fingerprints = append([]uint64(nil), c.fpLog[req.FpSeq:end]...)
		resp.FpNext = end
		if c.met != nil {
			c.met.Fingerprints.Add(0, int64(len(resp.Fingerprints)))
		}
	}
	if c.finished {
		resp.Done = true
		return resp, nil
	}
	if len(c.queue) == 0 {
		resp.Wait = true
		resp.RetryMillis = c.cfg.Heartbeat.Milliseconds()
		if resp.RetryMillis < 1 {
			resp.RetryMillis = 1
		}
		return resp, nil
	}
	id := c.queue[0]
	c.queue = c.queue[1:]
	sh := c.shards[id]
	now := c.cfg.now()
	sh.status, sh.owner = shardLeased, req.Worker
	sh.leasedAt, sh.leaseExp = now, now.Add(c.cfg.Lease)
	sh.attempts++
	sh.span = spanID(c.runID, sh.id, sh.attempts)
	if c.met != nil {
		c.met.LeasesGranted.Inc(0)
	}
	c.cfg.Journal.EmitShard(obslog.ShardLeased, sh.id, obslog.Fields{
		Worker: req.Worker, Span: sh.span, Attempt: sh.attempts,
	})
	resp.Shard = sh.id
	resp.Path = sh.path
	resp.LeaseMillis = c.cfg.Lease.Milliseconds()
	resp.SpanID = sh.span
	resp.Attempt = sh.attempts
	return resp, nil
}

// spanID names one lease attempt of one shard. The coordinator stamps
// it on the lease, the worker echoes it on every event and trace span
// of the attempt, and mmobs matches the two lanes by it.
func spanID(run string, shard, attempt int) string {
	return fmt.Sprintf("%s/s%d/a%d", run, shard, attempt)
}

// handleHeartbeat renews every lease the worker holds.
func (c *Coordinator) handleHeartbeat(req *HeartbeatRequest) (*HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wi := c.touch(req.Worker)
	if req.Metrics != nil {
		wi.snap = req.Metrics
		c.updateFleetLocked()
	}
	now := c.cfg.now()
	for _, sh := range c.shards {
		if sh.status == shardLeased && sh.owner == req.Worker {
			sh.leaseExp = now.Add(c.cfg.Lease)
		}
	}
	if c.met != nil {
		c.met.Heartbeats.Inc(0)
	}
	return &HeartbeatResponse{Done: c.finished}, nil
}

// handleComplete ingests a shard result, idempotently: the first
// submission for a shard wins — whether from the current lease holder,
// a previous holder finishing after expiry, or a reassigned peer — and
// every later one is acknowledged as a duplicate without double-
// counting. Fingerprints enter the exchange log only from clean
// completions (an incomplete shard's subtree is not fully explored, so
// its fingerprints must not suppress exploration elsewhere).
func (c *Coordinator) handleComplete(req *CompleteRequest) (*CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkHash(req.Worker, req.ProgramHash); err != nil {
		return nil, err
	}
	wi := c.touch(req.Worker)
	if req.Shard < 0 || req.Shard >= len(c.shards) {
		return nil, fmt.Errorf("dist: complete for unknown shard %d", req.Shard)
	}
	sh := c.shards[req.Shard]
	if sh.status == shardDone {
		if c.met != nil {
			c.met.Duplicates.Inc(0)
		}
		c.cfg.Journal.EmitShard(obslog.ShardDuplicate, sh.id, obslog.Fields{
			Worker: req.Worker, Span: req.SpanID,
		})
		return &CompleteResponse{OK: true, Duplicate: true}, nil
	}
	// A late completion from an expired lease may find the shard back
	// on the queue (or even re-leased): the work is identical either
	// way — paths replay deterministically — so first-wins is safe, and
	// the queue entry is dropped.
	if sh.status == shardQueued {
		for i, id := range c.queue {
			if id == req.Shard {
				c.queue = append(c.queue[:i], c.queue[i+1:]...)
				break
			}
		}
	}
	sh.status = shardDone
	sh.completed = req.Completed
	sh.explored = req.StatesExplored
	c.explored += req.StatesExplored
	wi.shardsDone++
	// The submission may carry an older attempt's span (a slow previous
	// holder beating the reassignee); credit that attempt, not the
	// current lease's.
	if req.SpanID != "" {
		sh.span = req.SpanID
	}
	if !sh.leasedAt.IsZero() {
		sh.latencyMs = c.cfg.now().Sub(sh.leasedAt).Milliseconds()
		c.cfg.Tracer.SpanArgs("shard", "shard", sh.id, sh.leasedAt,
			map[string]any{"span_id": sh.span, "worker": req.Worker})
	}
	if c.met != nil {
		c.met.ShardsDone.Inc(0)
		if !sh.leasedAt.IsZero() {
			c.met.ShardNs.Observe(c.cfg.now().Sub(sh.leasedAt).Nanoseconds())
		}
	}
	if req.Incomplete != nil {
		rep := req.Incomplete
		c.cfg.Journal.EmitShard(obslog.ShardIncomplete, sh.id, obslog.Fields{
			Worker: req.Worker, Span: sh.span, Reason: string(rep.Reason),
			States: rep.StatesExplored, Count: rep.StatesPending,
		})
		c.degrade(rep.Reason, fmt.Errorf("dist: shard %d on worker %s: %w",
			req.Shard, req.Worker, &core.IncompleteError{Report: rep}))
		c.extraFrontier = append(c.extraFrontier, rep.Frontier...)
		c.spillDegraded = append(c.spillDegraded, rep.SpillDegraded...)
	} else {
		c.cfg.Journal.EmitShard(obslog.ShardCompleted, sh.id, obslog.Fields{
			Worker: req.Worker, Span: sh.span, Count: len(req.Completed),
			States: req.StatesExplored, Ms: sh.latencyMs,
		})
		for _, h := range req.Fingerprints {
			if _, dup := c.fpSeen[h]; dup {
				continue
			}
			c.fpSeen[h] = struct{}{}
			c.fpLog = append(c.fpLog, h)
		}
	}
	c.checkFinished()
	return &CompleteResponse{OK: true}, nil
}

// degrade latches the first degradation classification. Caller holds mu.
func (c *Coordinator) degrade(reason core.IncompleteReason, cause error) {
	if c.degradedReason == "" {
		c.degradedReason, c.degradedCause = reason, cause
		c.cfg.Journal.Emit(obslog.RunDegraded, obslog.Fields{
			Reason: string(reason), Err: cause.Error(),
		})
	}
}

// checkFinished closes the done latch when every shard is accounted
// for. Caller holds mu.
func (c *Coordinator) checkFinished() {
	for _, sh := range c.shards {
		if sh.status != shardDone {
			return
		}
	}
	c.finish()
}

// finish closes the done channel once. Caller holds mu (or is the
// constructor, before any concurrency).
func (c *Coordinator) finish() {
	if !c.finished {
		c.finished = true
		c.cfg.Journal.Emit(obslog.RunFinished, obslog.Fields{
			States: c.explored, Count: len(c.shards) - c.pendingLocked(),
		})
		close(c.done)
	}
}

// sweep is the lease reaper: expired leases return their shards to the
// queue, and a fleet silent past WorkerDeadline with shards still
// pending degrades the run. Runs periodically under Start; the
// deterministic tests call it directly with a fake clock.
func (c *Coordinator) sweep(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sh := range c.shards {
		if sh.status == shardLeased && now.After(sh.leaseExp) {
			owner := sh.owner
			sh.status, sh.owner = shardQueued, ""
			c.queue = append(c.queue, sh.id)
			if c.met != nil {
				c.met.LeasesExpired.Inc(0)
			}
			c.cfg.Journal.EmitShard(obslog.ShardLeaseExpired, sh.id, obslog.Fields{
				Worker: owner, Span: sh.span, Attempt: sh.attempts,
			})
			c.cfg.Journal.EmitShard(obslog.ShardRequeued, sh.id, obslog.Fields{
				Attempt: sh.attempts,
			})
		}
	}
	// Classify worker liveness from heartbeat silence: live → missed past
	// ~2 intervals, missed → lost past the 3-heartbeat lease TTL. Each
	// transition journals once; any contact revives the worker (touch).
	for id, wi := range c.workers {
		silent := now.Sub(wi.lastSeen)
		switch wi.state {
		case workerLive:
			if silent > 2*c.cfg.Heartbeat {
				wi.state = workerMissed
				c.cfg.Journal.Emit(obslog.WorkerHeartbeatMissed, obslog.Fields{
					Worker: id, Ms: silent.Milliseconds(),
				})
			}
		case workerMissed:
			if silent > 3*c.cfg.Heartbeat {
				wi.state = workerLost
				c.cfg.Journal.Emit(obslog.WorkerLost, obslog.Fields{
					Worker: id, Ms: silent.Milliseconds(),
				})
				// A lost worker's stale snapshot must stop inflating the
				// fleet aggregation.
				c.updateFleetLocked()
			}
		}
	}
	if !c.finished && c.cfg.WorkerDeadline > 0 && now.Sub(c.lastContact) > c.cfg.WorkerDeadline {
		c.degrade(core.ReasonWorkersLost, fmt.Errorf("dist: no worker contact for %v with %d shards pending",
			now.Sub(c.lastContact).Round(time.Millisecond), c.pendingLocked()))
		c.finish()
	}
}

// pendingLocked counts shards not yet done. Caller holds mu.
func (c *Coordinator) pendingLocked() int {
	n := 0
	for _, sh := range c.shards {
		if sh.status != shardDone {
			n++
		}
	}
	return n
}

// Status snapshots progress for the /status endpoint and the CLI:
// the legacy counters plus the full run ledger — one row per shard,
// one per worker, the degradation reason, and shard-latency quantiles.
func (c *Coordinator) Status() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	pending := c.pendingLocked()
	st := StatusResponse{
		Shards:    len(c.shards),
		Completed: len(c.shards) - pending,
		Pending:   pending,
		Workers:   len(c.workers),
		Done:      c.finished,
		Degraded:  c.degradedReason != "",
		RunID:     c.runID,
	}
	if c.degradedReason != "" {
		st.DegradedReason = string(c.degradedReason)
	}
	for _, sh := range c.shards {
		row := ShardLedger{
			ID:       sh.id,
			State:    sh.status.String(),
			Owner:    sh.owner,
			Attempts: sh.attempts,
			Span:     sh.span,
		}
		if sh.status == shardDone {
			row.Behaviors = len(sh.completed)
			row.Explored = sh.explored
			row.LatencyMs = sh.latencyMs
		}
		st.ShardTable = append(st.ShardTable, row)
	}
	for id, wi := range c.workers {
		row := WorkerLedger{
			ID:         id,
			State:      wi.state.String(),
			LastSeenMs: now.Sub(wi.lastSeen).Milliseconds(),
			ShardsDone: wi.shardsDone,
		}
		if wi.snap != nil {
			row.Retries = wi.snap["dist_retries_total"]
			row.Explored = wi.snap["enum_states_explored_total"]
		}
		st.WorkerTable = append(st.WorkerTable, row)
	}
	sort.Slice(st.WorkerTable, func(i, j int) bool {
		return st.WorkerTable[i].ID < st.WorkerTable[j].ID
	})
	if c.met != nil && c.met.ShardNs != nil && c.met.ShardNs.Count() > 0 {
		st.ShardLatency = &LatencySummary{
			P50Ms: c.met.ShardNs.Quantile(0.50) / 1e6,
			P95Ms: c.met.ShardNs.Quantile(0.95) / 1e6,
			P99Ms: c.met.ShardNs.Quantile(0.99) / 1e6,
		}
	}
	return st
}

// Wait blocks until every shard is accounted for (or the run degrades,
// or ctx ends), then merges: partition-time completions plus every
// shard's results, folded in shard-ID order through core.MergeCompleted
// into a canonical Result that is bit-identical to a single-process
// enumeration. A degraded run returns the partial merge plus an
// *core.IncompleteError whose frontier is every pending shard's path.
func (c *Coordinator) Wait(ctx context.Context) (*core.Result, error) {
	select {
	case <-ctx.Done():
		c.mu.Lock()
		c.degrade(core.ReasonCanceled, ctx.Err())
		c.finish()
		c.mu.Unlock()
	case <-c.done:
	}

	c.mu.Lock()
	completed := append([][]core.PathStep{}, c.baseCompleted...)
	var frontier [][]core.PathStep
	for _, sh := range c.shards {
		completed = append(completed, sh.completed...)
		if sh.status != shardDone {
			frontier = append(frontier, sh.path)
		}
	}
	frontier = append(frontier, c.extraFrontier...)
	reason, cause := c.degradedReason, c.degradedCause
	explored := c.explored
	spill := c.spillDegraded
	c.mu.Unlock()

	res, err := core.MergeCompleted(context.WithoutCancel(ctx), c.prog, c.pol, c.opts, completed)
	if err != nil {
		return nil, fmt.Errorf("dist: merge: %w", err)
	}
	res.Stats.StatesExplored = explored
	res.Stats.SpillDegraded = append(res.Stats.SpillDegraded, spill...)
	if reason != "" {
		rep := &core.Incomplete{
			Reason:         reason,
			Cause:          cause,
			StatesExplored: explored,
			StatesPending:  len(frontier),
			Frontier:       frontier,
			SpillDegraded:  res.Stats.SpillDegraded,
			Metrics:        c.met.Snapshot(),
		}
		res.Incomplete = rep
		return res, &core.IncompleteError{Report: rep}
	}
	return res, nil
}
