package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"storeatomicity/internal/telemetry"
)

// TestBackoffDelayBounds: every delay sits in the jitter envelope
// [0.5·step, 1.5·step) where step = min(Base<<attempt, Cap), and the
// exponential growth saturates at Cap instead of overflowing.
func TestBackoffDelayBounds(t *testing.T) {
	b := NewBackoff(50*time.Millisecond, 2*time.Second, 5, 42)
	for attempt := 0; attempt < 80; attempt++ {
		step := b.Base << uint(attempt)
		if step > b.Cap || step <= 0 {
			step = b.Cap
		}
		d := b.delay(attempt)
		if d < step/2 || d >= step+step/2 {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, step/2, step+step/2)
		}
	}
}

// TestBackoffJitterIsSeeded: the same seed replays the same schedule —
// chaos runs stay reproducible — and different seeds decorrelate the
// fleet.
func TestBackoffJitterIsSeeded(t *testing.T) {
	a1 := NewBackoff(0, 0, 0, 7)
	a2 := NewBackoff(0, 0, 0, 7)
	diff := NewBackoff(0, 0, 0, 8)
	same, varies := true, false
	for i := 0; i < 16; i++ {
		d1, d2 := a1.delay(i), a2.delay(i)
		if d1 != d2 {
			same = false
		}
		if d1 != diff.delay(i) {
			varies = true
		}
	}
	if !same {
		t.Error("equal seeds produced different schedules")
	}
	if !varies {
		t.Error("distinct seeds produced identical schedules")
	}
}

// flakyHandler fails the first n requests with status code, then
// delegates to ok.
func flakyHandler(n int, code int, ok http.HandlerFunc) (http.HandlerFunc, *atomic.Int32) {
	var calls atomic.Int32
	return func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int32(n) {
			http.Error(w, "injected", code)
			return
		}
		ok(w, r)
	}, &calls
}

func okJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, `{"done":true}`)
}

func testClient(base string, maxRetries int) *client {
	return &client{
		base:    base,
		hc:      &http.Client{Timeout: 5 * time.Second},
		backoff: NewBackoff(time.Millisecond, 4*time.Millisecond, maxRetries, 1),
	}
}

// TestClientRetries5xx: server errors are transient — the client keeps
// retrying and succeeds once the coordinator recovers.
func TestClientRetries5xx(t *testing.T) {
	h, calls := flakyHandler(3, http.StatusInternalServerError, okJSON)
	srv := httptest.NewServer(h)
	defer srv.Close()
	var resp HeartbeatResponse
	if err := testClient(srv.URL, 5).call(context.Background(), PathHeartbeat, &HeartbeatRequest{Worker: "w"}, &resp); err != nil {
		t.Fatalf("call after recovery: %v", err)
	}
	if !resp.Done || calls.Load() != 4 {
		t.Fatalf("resp %+v after %d calls, want done after 4", resp, calls.Load())
	}
}

// TestClientRetriesTransportError: a refused connection (the partition
// model) is transient too.
func TestClientRetriesTransportError(t *testing.T) {
	srv := httptest.NewUnstartedServer(http.HandlerFunc(okJSON))
	// A closed port: grab the address, keep it closed for the first
	// attempts by pointing at a server we only start after a beat.
	srv.Start()
	url := srv.URL
	srv.Close()
	var resp HeartbeatResponse
	err := testClient(url, 2).call(context.Background(), PathHeartbeat, &HeartbeatRequest{Worker: "w"}, &resp)
	if err == nil {
		t.Fatal("call to a dead coordinator succeeded")
	}
	if !strings.Contains(err.Error(), "failed after 2 retries") {
		t.Fatalf("transport failure not retried to exhaustion: %v", err)
	}
}

// TestClient4xxTerminal: a refusal (program-hash skew, malformed
// request) must NOT be retried — the retry counter stays at one call.
func TestClient4xxTerminal(t *testing.T) {
	h, calls := flakyHandler(1<<30, http.StatusConflict, okJSON)
	srv := httptest.NewServer(h)
	defer srv.Close()
	err := testClient(srv.URL, 5).call(context.Background(), PathRegister, &RegisterRequest{Worker: "w"}, nil)
	if err == nil {
		t.Fatal("4xx treated as success")
	}
	var te *transientError
	if errors.As(err, &te) {
		t.Fatalf("4xx classified transient: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx retried %d times", calls.Load()-1)
	}
}

// TestClientCancelAbortsRetryWait: cancellation lands immediately even
// while the client sleeps between retries.
func TestClientCancelAbortsRetryWait(t *testing.T) {
	h, _ := flakyHandler(1<<30, http.StatusInternalServerError, okJSON)
	srv := httptest.NewServer(h)
	defer srv.Close()
	c := &client{
		base:    srv.URL,
		hc:      &http.Client{Timeout: 5 * time.Second},
		backoff: NewBackoff(time.Hour, time.Hour, 5, 1), // would sleep forever
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := c.call(ctx, PathHeartbeat, &HeartbeatRequest{Worker: "w"}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v — retry wait not interruptible", elapsed)
	}
}

// TestClientRetryMetrics: every retry increments dist_retries_total.
func TestClientRetryMetrics(t *testing.T) {
	h, _ := flakyHandler(2, http.StatusInternalServerError, okJSON)
	srv := httptest.NewServer(h)
	defer srv.Close()
	met := telemetry.NewDistMetrics(telemetry.NewRegistry())
	if met == nil {
		t.Skip("telemetry disabled in this build")
	}
	c := testClient(srv.URL, 5)
	c.met = met
	var resp HeartbeatResponse
	if err := c.call(context.Background(), PathHeartbeat, &HeartbeatRequest{Worker: "w"}, &resp); err != nil {
		t.Fatal(err)
	}
	if got := met.Retries.Value(); got != 2 {
		t.Fatalf("dist_retries_total = %d, want 2", got)
	}
}
