package dist

import (
	"os"
	"testing"

	"storeatomicity/internal/leakcheck"
)

// TestMain gates the whole dist test binary — the lease/heartbeat/chaos
// tests included — on goroutine hygiene: lease sweepers, heartbeat
// tickers, HTTP serve loops, and chaos fleet supervisors must all be
// gone when the binary exits. The watch substring has no trailing dot
// so it also covers the dist/chaos subpackage.
func TestMain(m *testing.M) {
	os.Exit(leakcheck.Main(m.Run(), "storeatomicity/internal/dist"))
}
