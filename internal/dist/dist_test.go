package dist_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"storeatomicity/internal/core"
	"storeatomicity/internal/dist"
	"storeatomicity/internal/dist/chaos"
)

// enumSuite mirrors the benchmark suite (bench_test.go): the
// (experiment, test, model) triples the distributed headline claim
// ranges over — the merged behavior set must be bit-identical to the
// single-process engine for every entry.
var enumSuite = []struct {
	exp, test, model string
}{
	{"E2", "Figure3", "Relaxed"},
	{"E3", "Figure4", "Relaxed"},
	{"E4", "Figure5", "Relaxed"},
	{"E5", "Figure7", "Relaxed"},
	{"E6", "Figure8", "Relaxed+spec"},
	{"E7", "Figure10", "TSO"},
	{"E8", "Figure10", "Relaxed"},
	{"E9", "IRIW", "Relaxed"},
	{"E10", "MP", "Relaxed"},
	{"E11", "SB", "TSO"},
	{"E12", "LB", "Relaxed"},
	{"E13", "SB3", "Relaxed"},
	{"E14", "SB3W", "Relaxed"},
}

// oracle runs the job single-process and returns its canonical set.
// Results are memoized: every worker-count/chaos variant of an entry
// compares against the same sequential baseline.
var (
	oracleMu    sync.Mutex
	oracleCache = map[string]string{}
)

func oracle(t *testing.T, job dist.JobSpec) string {
	t.Helper()
	key := job.Test + "/" + job.Model
	oracleMu.Lock()
	defer oracleMu.Unlock()
	if want, ok := oracleCache[key]; ok {
		return want
	}
	tst, m, opts, err := job.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Enumerate(context.Background(), tst.Build(), m.Policy, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := dist.Canonical(res)
	oracleCache[key] = want
	return want
}

// startCoordinator builds and serves a coordinator, torn down with the
// test.
func startCoordinator(t *testing.T, cfg dist.Config) *dist.Coordinator {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	c, err := dist.NewCoordinator(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestDistributedEquivalence is the headline claim, clean half: for
// every suite entry at 1, 2, and 4 workers over real HTTP, the merged
// result is bit-identical to the sequential engine.
func TestDistributedEquivalence(t *testing.T) {
	t.Parallel()
	for _, s := range enumSuite {
		for _, workers := range []int{1, 2, 4} {
			s, workers := s, workers
			t.Run(fmt.Sprintf("%s_%s_%s/w%d", s.exp, s.test, s.model, workers), func(t *testing.T) {
				t.Parallel()
				job := dist.JobSpec{Test: s.test, Model: s.model}
				c := startCoordinator(t, dist.Config{Job: job, Shards: 8, WorkerDeadline: time.Minute})

				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				defer cancel()
				var wg sync.WaitGroup
				for i := 0; i < workers; i++ {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						w := dist.NewWorker(dist.WorkerConfig{
							Coord: "http://" + c.Addr(),
							ID:    fmt.Sprintf("w%d", i),
							Seed:  int64(i + 1),
						})
						if err := w.Run(ctx); err != nil {
							t.Errorf("worker %d: %v", i, err)
						}
					}(i)
				}
				res, err := c.Wait(ctx)
				wg.Wait()
				if err != nil {
					t.Fatal(err)
				}
				if got, want := dist.Canonical(res), oracle(t, job); got != want {
					t.Errorf("distributed set differs from sequential oracle\n got: %s\nwant: %s", got, want)
				}
				if res.Stats.StatesExplored <= 0 {
					t.Errorf("merged StatesExplored = %d", res.Stats.StatesExplored)
				}
			})
		}
	}
}

// TestDistributedEquivalenceUnderChaos is the headline claim, chaos
// half: same matrix, but workers are killed, paused, and partitioned on
// a seeded schedule while lease expiry, reassignment, retry/backoff,
// and idempotent completion keep the run exact. Short leases and a
// per-shard delay make faults land mid-shard.
func TestDistributedEquivalenceUnderChaos(t *testing.T) {
	t.Parallel()
	suite := enumSuite
	if testing.Short() {
		suite = suite[:4]
	}
	for _, s := range suite {
		for _, workers := range []int{1, 2, 4} {
			s, workers := s, workers
			t.Run(fmt.Sprintf("%s_%s_%s/w%d", s.exp, s.test, s.model, workers), func(t *testing.T) {
				t.Parallel()
				job := dist.JobSpec{Test: s.test, Model: s.model}
				c := startCoordinator(t, dist.Config{
					Job:            job,
					Shards:         8,
					Lease:          150 * time.Millisecond,
					Heartbeat:      30 * time.Millisecond,
					WorkerDeadline: time.Minute,
				})

				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				defer cancel()
				fleet := &chaos.Fleet{
					Base: dist.WorkerConfig{
						Coord:      "http://" + c.Addr(),
						ID:         "chaos",
						MaxRetries: 4,
						RetryBase:  10 * time.Millisecond,
						ShardDelay: 5 * time.Millisecond,
					},
					Workers: workers,
					Plan:    chaos.RandomPlan(int64(len(s.test))*100+int64(workers), workers, 800*time.Millisecond),
					Respawn: 10 * time.Millisecond,
				}
				fleetDone := make(chan error, 1)
				go func() { fleetDone <- fleet.Run(ctx) }()

				res, err := c.Wait(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if ferr := <-fleetDone; ferr != nil {
					t.Fatalf("fleet: %v", ferr)
				}
				if got, want := dist.Canonical(res), oracle(t, job); got != want {
					t.Errorf("chaos run differs from sequential oracle (plan: %v)\n got: %s\nwant: %s",
						fleet.Applied, got, want)
				}
				if fleet.Spawns < workers {
					t.Errorf("fleet spawned %d generations for %d slots", fleet.Spawns, workers)
				}
			})
		}
	}
}

// TestCoordinatorDegradesWhenFleetLost: end to end, a coordinator whose
// workers never arrive degrades to a structured Incomplete after the
// worker deadline instead of hanging.
func TestCoordinatorDegradesWhenFleetLost(t *testing.T) {
	t.Parallel()
	c := startCoordinator(t, dist.Config{
		Job:            dist.JobSpec{Test: "MP", Model: "Relaxed"},
		Shards:         4,
		Lease:          50 * time.Millisecond,
		Heartbeat:      10 * time.Millisecond,
		WorkerDeadline: 200 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	_, err := c.Wait(ctx)
	var ie *core.IncompleteError
	if !errors.As(err, &ie) {
		t.Fatalf("want *core.IncompleteError, got %v", err)
	}
	if ie.Report.Reason != core.ReasonWorkersLost {
		t.Errorf("reason %q, want %q", ie.Report.Reason, core.ReasonWorkersLost)
	}
	if len(ie.Report.Frontier) == 0 {
		t.Error("degraded report carries no frontier")
	}
}

// TestRegisterRefusesProgramHashSkew: a worker announcing a different
// program hash is refused with a terminal 4xx (no retry storm), end to
// end over the wire.
func TestRegisterRefusesProgramHashSkew(t *testing.T) {
	t.Parallel()
	c := startCoordinator(t, dist.Config{
		Job:    dist.JobSpec{Test: "MP", Model: "Relaxed"},
		Shards: 2,
	})
	body := strings.NewReader(`{"worker":"skewed","program_hash":3735928559}`)
	resp, err := http.Post("http://"+c.Addr()+dist.PathRegister, "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 400 || resp.StatusCode >= 500 {
		t.Fatalf("skewed registration got %s, want a terminal 4xx", resp.Status)
	}
}
