package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"storeatomicity/internal/core"
	"storeatomicity/internal/obslog"
	"storeatomicity/internal/order"
	"storeatomicity/internal/program"
	"storeatomicity/internal/telemetry"
)

// WorkerConfig tunes a worker process (or an in-process worker in the
// tests).
type WorkerConfig struct {
	// Coord is the coordinator base URL ("http://host:port").
	Coord string
	// ID names this worker in leases and logs.
	ID string
	// MaxRetries caps retries per coordinator call (default 5).
	MaxRetries int
	// RetryBase is the first backoff delay (default 50ms).
	RetryBase time.Duration
	// EngineWorkers is the per-shard engine width (default 1 =
	// sequential; the process-level parallelism is the worker fleet).
	EngineWorkers int
	// ShardDelay stretches each shard by sleeping before enumeration —
	// a test/chaos knob so kills land mid-shard (default 0).
	ShardDelay time.Duration
	// Seed seeds the backoff jitter (default 1).
	Seed int64
	// Client is the HTTP transport; injectable so the chaos harness can
	// drop or stall calls (default http.DefaultClient semantics with a
	// sane timeout).
	Client *http.Client
	// Metrics, when non-nil, receives worker-side counters
	// (dist_retries_total chief among them).
	Metrics *telemetry.DistMetrics
	// Enum, when non-nil, receives the per-shard engine counters so the
	// worker's heartbeat snapshot carries real exploration progress.
	Enum *telemetry.EnumMetrics
	// Journal, when non-nil, receives this worker's event stream. Run
	// adopts the coordinator's run ID on registration so the stream
	// merges with the fleet's.
	Journal *obslog.Journal
	// Tracer, when non-nil, records one span per shard attempt, stamped
	// with the lease's span ID for cross-process matching.
	Tracer *telemetry.Tracer
	// Snapshot, when non-nil, produces the compact metric snapshot each
	// heartbeat piggybacks (typically Registry.Snapshot of the worker's
	// registry).
	Snapshot func() telemetry.Snapshot
}

func (w WorkerConfig) withDefaults() WorkerConfig {
	if w.ID == "" {
		w.ID = "worker"
	}
	if w.MaxRetries <= 0 {
		w.MaxRetries = 5
	}
	if w.RetryBase <= 0 {
		w.RetryBase = 50 * time.Millisecond
	}
	if w.EngineWorkers <= 0 {
		w.EngineWorkers = 1
	}
	if w.Seed == 0 {
		w.Seed = 1
	}
	if w.Client == nil {
		w.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return w
}

// Worker pulls shard leases from a coordinator, enumerates each shard's
// subtree, and posts results idempotently. Every coordinator call runs
// under the capped-exponential-backoff retry discipline.
type Worker struct {
	cfg  WorkerConfig
	c    *client
	prog *program.Program
	pol  order.Policy
	opts core.Options

	heartbeatEvery time.Duration
	hash           uint64
	fpSeq          int
	seedSeen       []uint64
}

// NewWorker builds a worker; Run does the work.
func NewWorker(cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	return &Worker{
		cfg: cfg,
		c: &client{
			base:    cfg.Coord,
			hc:      cfg.Client,
			backoff: NewBackoff(cfg.RetryBase, 0, cfg.MaxRetries, cfg.Seed),
			met:     cfg.Metrics,
		},
	}
}

// Run registers, heartbeats, and drains leases until the coordinator
// says Done (nil), the context ends (ctx.Err()), or retries exhaust
// (the transport error). A context cancellation mid-shard abandons the
// shard WITHOUT posting a completion: the lease expires and the shard
// is reassigned — the crash-model contract the chaos tests enforce.
func (w *Worker) Run(ctx context.Context) error {
	var reg RegisterResponse
	if err := w.c.call(ctx, PathRegister, &RegisterRequest{Worker: w.cfg.ID}, &reg); err != nil {
		return err
	}
	t, m, opts, err := reg.Job.Resolve()
	if err != nil {
		return err
	}
	w.prog, w.pol, w.opts = t.Build(), m.Policy, opts
	w.hash = core.ProgramFingerprint(reg.Job.Model, w.prog, w.opts)
	if reg.RunID != "" {
		// Adopt the coordinator's run identity: from here on this
		// worker's journal lines and trace carry the fleet's run ID, so
		// mmobs can merge N processes into one timeline.
		w.cfg.Journal.SetRun(reg.RunID)
		w.cfg.Tracer.SetMeta("run_id", reg.RunID)
	}
	w.cfg.Tracer.SetMeta("role", "worker")
	w.cfg.Journal.Emit(obslog.WorkerRegistered, obslog.Fields{Worker: w.cfg.ID})
	if w.hash != reg.Job.ProgramHash {
		return fmt.Errorf("dist: worker %s built program hash %#x, job says %#x (version skew)",
			w.cfg.ID, w.hash, reg.Job.ProgramHash)
	}
	w.heartbeatEvery = time.Duration(reg.HeartbeatMillis) * time.Millisecond
	if w.heartbeatEvery <= 0 {
		w.heartbeatEvery = time.Second
	}

	// Heartbeat loop: renews every lease this worker holds. Torn down
	// before Run returns, so the leak gate stays clean.
	hbCtx, hbCancel := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(w.heartbeatEvery)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				hbReq := HeartbeatRequest{Worker: w.cfg.ID}
				if w.cfg.Snapshot != nil {
					// Piggyback the worker's compact metric snapshot; the
					// coordinator folds the live fleet's snapshots into
					// the dist_fleet_* aggregation.
					hbReq.Metrics = w.cfg.Snapshot()
				}
				var hb HeartbeatResponse
				// Heartbeat failures are not fatal by themselves — the
				// lease loop's calls decide when the coordinator is
				// truly gone.
				w.c.call(hbCtx, PathHeartbeat, &hbReq, &hb) //nolint:errcheck
			}
		}
	}()
	defer func() {
		hbCancel()
		hbWG.Wait()
	}()

	for {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		var lease LeaseResponse
		if err := w.c.call(ctx, PathLease, &LeaseRequest{Worker: w.cfg.ID, FpSeq: w.fpSeq, ProgramHash: w.hash}, &lease); err != nil {
			return err
		}
		w.ingestFingerprints(&lease)
		if lease.Done {
			return nil
		}
		if lease.Wait {
			wait := time.Duration(lease.RetryMillis) * time.Millisecond
			if wait <= 0 {
				wait = 100 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wait):
			}
			continue
		}
		if err := w.runShard(ctx, &lease); err != nil {
			return err
		}
	}
}

// ingestFingerprints folds a lease response's exchange batch into the
// seen-set seed for subsequent shards.
func (w *Worker) ingestFingerprints(lease *LeaseResponse) {
	if len(lease.Fingerprints) > 0 {
		w.seedSeen = append(w.seedSeen, lease.Fingerprints...)
	}
	if lease.FpNext > w.fpSeq {
		w.fpSeq = lease.FpNext
	}
}

// runShard enumerates one leased shard and posts its results. The
// engine run is seeded with the fingerprints of peers' already-merged
// shards (pure pruning; see core/partition.go) and exports its own for
// the exchange. A ctx cancellation mid-run returns the error without
// posting — the lease will expire and the shard be reassigned.
func (w *Worker) runShard(ctx context.Context, lease *LeaseResponse) error {
	if d := w.cfg.ShardDelay; d > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
	opts := w.opts
	opts.SeedSeen = w.seedSeen
	opts.ExportSeen = -1
	opts.Metrics = w.cfg.Enum
	opts.Journal = w.cfg.Journal
	w.cfg.Journal.EmitShard(obslog.ShardStarted, lease.Shard, obslog.Fields{
		Worker: w.cfg.ID, Span: lease.SpanID, Attempt: lease.Attempt,
	})
	started := time.Now()
	res, err := core.EnumerateShard(ctx, w.prog, w.pol, opts, lease.Path, w.cfg.EngineWorkers)
	w.cfg.Tracer.SpanArgs(fmt.Sprintf("shard %d", lease.Shard), "shard", lease.Shard, started,
		map[string]any{"span_id": lease.SpanID, "attempt": lease.Attempt})
	req := &CompleteRequest{Worker: w.cfg.ID, Shard: lease.Shard, ProgramHash: w.hash, SpanID: lease.SpanID}
	switch {
	case err == nil:
		req.Fingerprints = res.SeenExport
		w.cfg.Journal.EmitShard(obslog.ShardCompleted, lease.Shard, obslog.Fields{
			Worker: w.cfg.ID, Span: lease.SpanID, Count: len(res.Executions),
			States: res.Stats.StatesExplored, Ms: time.Since(started).Milliseconds(),
		})
	case errors.Is(err, core.ErrIncomplete):
		// A canceled shard is abandoned, not submitted: cancellation is
		// the chaos/kill path, and posting its partial frontier would
		// wrongly latch degradation for work the lease machinery will
		// simply reassign. Genuine budget stops and panics DO submit —
		// they would repeat identically on any worker, so degradation
		// is the honest outcome.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		req.Incomplete = res.Incomplete
		w.cfg.Journal.EmitShard(obslog.ShardIncomplete, lease.Shard, obslog.Fields{
			Worker: w.cfg.ID, Span: lease.SpanID, Reason: string(res.Incomplete.Reason),
			States: res.Stats.StatesExplored,
		})
	default:
		return fmt.Errorf("dist: shard %d: %w", lease.Shard, err)
	}
	req.StatesExplored = res.Stats.StatesExplored
	for _, e := range res.Executions {
		req.Completed = append(req.Completed, e.Path)
	}
	var ack CompleteResponse
	if err := w.c.call(ctx, PathComplete, req, &ack); err != nil {
		return err
	}
	return nil
}
