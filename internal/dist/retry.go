package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"storeatomicity/internal/telemetry"
)

// Backoff is the worker-side retry discipline, mirroring the NACK-retry
// shape of internal/coherence/faults.go: capped exponential growth
// (base, 2·base, 4·base, ... up to Cap) with ±50% jitter so a fleet of
// workers retrying a briefly unreachable coordinator does not
// synchronize into thundering herds. Max bounds the attempts; the
// jitter source is seeded, so a chaos run's retry schedule is
// reproducible.
type Backoff struct {
	// Base is the first retry delay (default 50ms).
	Base time.Duration
	// Cap bounds the exponential growth (default 2s).
	Cap time.Duration
	// Max is the attempt budget: Max retries after the initial try
	// (default 5). The attempt that exhausts it returns the last error.
	Max int

	rng *rand.Rand
}

// NewBackoff builds a seeded backoff policy; zero fields take defaults.
func NewBackoff(base, cap time.Duration, max int, seed int64) *Backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if cap <= 0 {
		cap = 2 * time.Second
	}
	if max <= 0 {
		max = 5
	}
	return &Backoff{Base: base, Cap: cap, Max: max, rng: rand.New(rand.NewSource(seed))}
}

// delay computes the jittered wait before retry attempt n (0-based):
// min(Base<<n, Cap) scaled by a uniform factor in [0.5, 1.5).
func (b *Backoff) delay(attempt int) time.Duration {
	d := b.Base << uint(attempt)
	if d > b.Cap || d <= 0 { // <= 0 guards shift overflow
		d = b.Cap
	}
	return time.Duration(float64(d) * (0.5 + b.rng.Float64()))
}

// transientError wraps a retryable failure so callers can distinguish
// "the coordinator is briefly unreachable" from a terminal refusal.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// client is the worker's coordinator stub: every call is POST-JSON with
// the shared retry/backoff discipline. The http.Client is injectable so
// the chaos harness can drop or stall calls at the transport.
type client struct {
	base    string
	hc      *http.Client
	backoff *Backoff
	met     *telemetry.DistMetrics
}

// call POSTs req to path and decodes the response into resp, retrying
// transport errors and 5xx responses with capped exponential backoff +
// jitter. 4xx responses are terminal (the coordinator refused us —
// retrying cannot help). Context cancellation aborts the retry loop
// immediately, including mid-wait.
func (c *client) call(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("dist: marshal %s request: %w", path, err)
	}
	var last error
	for attempt := 0; ; attempt++ {
		if err := c.once(ctx, path, body, resp); err == nil {
			return nil
		} else if _, transient := err.(*transientError); !transient {
			return err
		} else {
			last = err
		}
		if attempt >= c.backoff.Max {
			return fmt.Errorf("dist: %s failed after %d retries: %w", path, c.backoff.Max, last)
		}
		if c.met != nil {
			c.met.Retries.Inc(0)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.backoff.delay(attempt)):
		}
	}
}

// once performs a single POST round-trip.
func (c *client) once(ctx context.Context, path string, body []byte, resp any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: build %s request: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &transientError{fmt.Errorf("dist: %s: %w", path, err)}
	}
	defer hresp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		return &transientError{fmt.Errorf("dist: %s: read response: %w", path, err)}
	}
	if hresp.StatusCode >= 500 {
		return &transientError{fmt.Errorf("dist: %s: coordinator says %s: %s", path, hresp.Status, data)}
	}
	if hresp.StatusCode != http.StatusOK {
		return fmt.Errorf("dist: %s: coordinator refused: %s: %s", path, hresp.Status, data)
	}
	if resp == nil {
		return nil
	}
	if err := json.Unmarshal(data, resp); err != nil {
		return &transientError{fmt.Errorf("dist: %s: decode response: %w", path, err)}
	}
	return nil
}
