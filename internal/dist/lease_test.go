package dist

import (
	"context"
	"errors"
	"testing"
	"time"

	"storeatomicity/internal/core"
)

// fakeClock is a hand-cranked clock for deterministic lease tests: no
// sockets, no sleeps, no real time.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func (f *fakeClock) set(t time.Time)         { f.t = t }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func testJob() JobSpec                       { return JobSpec{Test: "MP", Model: "Relaxed"} }
func lease(t *testing.T, c *Coordinator, w string) *LeaseResponse {
	t.Helper()
	resp, err := c.handleLease(&LeaseRequest{Worker: w})
	if err != nil {
		t.Fatalf("lease(%s): %v", w, err)
	}
	return resp
}

// newTestCoordinator builds an unstarted coordinator on a fake clock;
// tests drive handleLease/handleComplete/sweep directly.
func newTestCoordinator(t *testing.T, cfg Config) (*Coordinator, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	cfg.now = clk.now
	if cfg.Job.Test == "" {
		cfg.Job = testJob()
	}
	c, err := NewCoordinator(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, clk
}

// runShardFor replays and enumerates a leased shard the way a worker
// would, returning the completion request body.
func runShardFor(t *testing.T, c *Coordinator, w string, resp *LeaseResponse) *CompleteRequest {
	t.Helper()
	res, err := core.EnumerateShard(context.Background(), c.prog, c.pol, c.opts, resp.Path, 1)
	if err != nil {
		t.Fatalf("shard %d: %v", resp.Shard, err)
	}
	req := &CompleteRequest{Worker: w, Shard: resp.Shard, StatesExplored: res.Stats.StatesExplored}
	for _, e := range res.Executions {
		req.Completed = append(req.Completed, e.Path)
	}
	return req
}

// TestLeaseExpiryReassignIdempotent is the acceptance-criterion unit
// test: worker A leases a shard, goes silent past the lease, the sweep
// returns the shard to the queue, worker B leases and completes it, and
// A's late submission is absorbed as a duplicate — the shard counted
// exactly once, the final merge exact.
func TestLeaseExpiryReassignIdempotent(t *testing.T) {
	cfg := Config{Lease: 10 * time.Second, Shards: 4, WorkerDeadline: -1}
	c, clk := newTestCoordinator(t, cfg)
	if len(c.shards) < 2 {
		t.Fatalf("partition produced %d shards; want >= 2", len(c.shards))
	}
	partExplored := c.explored

	respA := lease(t, c, "A")
	if respA.Wait || respA.Done {
		t.Fatalf("A got no shard: %+v", respA)
	}
	shardID := respA.Shard

	// A goes silent; the lease expires and the sweep requeues the shard.
	clk.advance(11 * time.Second)
	c.sweep(clk.now())
	c.mu.Lock()
	st := c.shards[shardID].status
	c.mu.Unlock()
	if st != shardQueued {
		t.Fatalf("expired shard %d not requeued (status %v)", shardID, st)
	}

	// B now gets the same shard (FIFO queue: the requeued shard is
	// behind the still-fresh ones, so B works through those first).
	var respB *LeaseResponse
	for i := 0; i < len(c.shards)+1; i++ {
		r := lease(t, c, "B")
		if r.Wait || r.Done {
			t.Fatalf("B ran out of leases before shard %d reappeared", shardID)
		}
		if r.Shard == shardID {
			respB = r
			break
		}
		if _, err := c.handleComplete(runShardFor(t, c, "B", r)); err != nil {
			t.Fatal(err)
		}
	}
	if respB == nil {
		t.Fatalf("reassigned shard %d never re-leased", shardID)
	}

	// A finishes late — after expiry, before B — and must win (first
	// completion wins; the work is deterministic so either winner is
	// byte-identical).
	reqA := runShardFor(t, c, "A", respA)
	ackA, err := c.handleComplete(reqA)
	if err != nil {
		t.Fatal(err)
	}
	if !ackA.OK || ackA.Duplicate {
		t.Fatalf("A's late completion not accepted first: %+v", ackA)
	}

	// B's completion of the same shard is a duplicate, not a recount.
	reqB := runShardFor(t, c, "B", respB)
	ackB, err := c.handleComplete(reqB)
	if err != nil {
		t.Fatal(err)
	}
	if !ackB.OK || !ackB.Duplicate {
		t.Fatalf("B's completion not flagged duplicate: %+v", ackB)
	}

	// The contested shard is counted exactly once: the exploration total
	// is the partition's plus each done shard's, with no extra term for
	// B's discarded resubmission.
	c.mu.Lock()
	wantExplored := partExplored
	for _, sh := range c.shards {
		if sh.status == shardDone {
			wantExplored += sh.explored
		}
	}
	if c.explored != wantExplored {
		t.Errorf("explored %d, want %d — the duplicate submission was double-counted", c.explored, wantExplored)
	}
	if c.shards[shardID].status != shardDone {
		t.Fatalf("contested shard %d not done", shardID)
	}
	c.mu.Unlock()

	// Finishing the rest produces the exact single-process set.
	for {
		r := lease(t, c, "B")
		if r.Done {
			break
		}
		if r.Wait {
			t.Fatal("coordinator stuck waiting with no outstanding leases")
		}
		if _, err := c.handleComplete(runShardFor(t, c, "B", r)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	assertMatchesSequential(t, c, res)
}

// assertMatchesSequential compares a coordinator result with the
// sequential oracle for the same job.
func assertMatchesSequential(t *testing.T, c *Coordinator, res *core.Result) {
	t.Helper()
	base, err := core.Enumerate(context.Background(), c.prog, c.pol, c.opts)
	if err != nil {
		t.Fatal(err)
	}
	if Canonical(res) != Canonical(base) {
		t.Errorf("merged set differs from sequential oracle:\n got: %s\nwant: %s",
			Canonical(res), Canonical(base))
	}
}

// TestHeartbeatRenewsLease: a heartbeating worker's lease never
// expires, however far past the nominal lease duration the clock runs.
func TestHeartbeatRenewsLease(t *testing.T) {
	c, clk := newTestCoordinator(t, Config{Lease: 10 * time.Second, Shards: 4, WorkerDeadline: -1})
	resp := lease(t, c, "A")
	for i := 0; i < 10; i++ {
		clk.advance(8 * time.Second)
		if _, err := c.handleHeartbeat(&HeartbeatRequest{Worker: "A"}); err != nil {
			t.Fatal(err)
		}
		c.sweep(clk.now())
	}
	c.mu.Lock()
	st, owner := c.shards[resp.Shard].status, c.shards[resp.Shard].owner
	c.mu.Unlock()
	if st != shardLeased || owner != "A" {
		t.Fatalf("heartbeating worker lost its lease: status %v owner %q", st, owner)
	}
}

// TestWorkerDeadlineDegrades: a fleet that never comes back trips the
// worker deadline and the run degrades to a structured Incomplete whose
// frontier is the pending shards — not a hang, not a silent partial.
func TestWorkerDeadlineDegrades(t *testing.T) {
	c, clk := newTestCoordinator(t, Config{Lease: 10 * time.Second, Shards: 4, WorkerDeadline: 30 * time.Second})
	resp := lease(t, c, "A")
	if _, err := c.handleComplete(runShardFor(t, c, "A", resp)); err != nil {
		t.Fatal(err)
	}
	// Fleet goes silent forever.
	clk.advance(31 * time.Second)
	c.sweep(clk.now())

	res, err := c.Wait(context.Background())
	if !errors.Is(err, core.ErrIncomplete) {
		t.Fatalf("want ErrIncomplete, got %v", err)
	}
	var ie *core.IncompleteError
	if !errors.As(err, &ie) {
		t.Fatalf("want *core.IncompleteError, got %T", err)
	}
	rep := ie.Report
	if rep.Reason != core.ReasonWorkersLost {
		t.Errorf("reason %q, want %q", rep.Reason, core.ReasonWorkersLost)
	}
	c.mu.Lock()
	pending := c.pendingLocked()
	c.mu.Unlock()
	if rep.StatesPending != pending || len(rep.Frontier) != pending {
		t.Errorf("report pending %d/frontier %d, want %d", rep.StatesPending, len(rep.Frontier), pending)
	}
	// The completed shard's behaviors are still in the partial merge.
	if len(res.Executions) == 0 {
		t.Error("degraded result lost the completed shard's behaviors")
	}
}

// TestFingerprintExchangeBatches: fingerprints from a clean completion
// flow to later leases in batches bounded by FingerprintBatch, and the
// sequence cursor advances so nothing is re-shipped.
func TestFingerprintExchangeBatches(t *testing.T) {
	c, _ := newTestCoordinator(t, Config{Lease: 10 * time.Second, Shards: 4, WorkerDeadline: -1, FingerprintBatch: 2})
	respA := lease(t, c, "A")
	reqA := runShardFor(t, c, "A", respA)
	reqA.Fingerprints = []uint64{11, 22, 33, 44, 55}
	if _, err := c.handleComplete(reqA); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	seq := 0
	for i := 0; i < 5; i++ {
		resp, err := c.handleLease(&LeaseRequest{Worker: "B", FpSeq: seq})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Fingerprints) > 2 {
			t.Fatalf("batch of %d exceeds FingerprintBatch=2", len(resp.Fingerprints))
		}
		got = append(got, resp.Fingerprints...)
		seq = resp.FpNext
	}
	if len(got) != 5 {
		t.Fatalf("exchange shipped %d fingerprints, want 5 exactly once: %v", len(got), got)
	}
}

// TestLeaseRefusesProgramHashSkew: a stale worker (registered with a
// previous coordinator on the same address, or built from different
// source) is refused at lease and completion time, not just at
// registration — its shards and submissions never touch the merge.
func TestLeaseRefusesProgramHashSkew(t *testing.T) {
	c, _ := newTestCoordinator(t, Config{Lease: 10 * time.Second, Shards: 4, WorkerDeadline: -1})
	if _, err := c.handleLease(&LeaseRequest{Worker: "stale", ProgramHash: 0xbad}); err == nil {
		t.Error("lease with skewed program hash accepted")
	}
	if _, err := c.handleComplete(&CompleteRequest{Worker: "stale", Shard: 0, ProgramHash: 0xbad}); err == nil {
		t.Error("completion with skewed program hash accepted")
	}
	// The honest hash still works.
	if _, err := c.handleLease(&LeaseRequest{Worker: "ok", ProgramHash: c.cfg.Job.ProgramHash}); err != nil {
		t.Errorf("lease with matching hash refused: %v", err)
	}
}

// TestIncompleteShardDegradesRun: a worker-reported budget stop latches
// coordinator degradation — re-running the same shard elsewhere would
// hit the same budget, so honesty beats retry.
func TestIncompleteShardDegradesRun(t *testing.T) {
	c, _ := newTestCoordinator(t, Config{Lease: 10 * time.Second, Shards: 4, WorkerDeadline: -1})
	resp := lease(t, c, "A")
	req := &CompleteRequest{
		Worker: "A", Shard: resp.Shard,
		Incomplete: &core.Incomplete{Reason: core.ReasonMaxBehaviors, StatesPending: 3},
	}
	if _, err := c.handleComplete(req); err != nil {
		t.Fatal(err)
	}
	// Drain the rest.
	for {
		r := lease(t, c, "A")
		if r.Done {
			break
		}
		if _, err := c.handleComplete(runShardFor(t, c, "A", r)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.Wait(context.Background())
	if !errors.Is(err, core.ErrIncomplete) {
		t.Fatalf("want degraded run, got %v", err)
	}
}
