// Package chaos is the fault-injection harness for the distributed
// enumeration layer: on a seeded schedule it kills workers (context
// cancellation — the process-crash model), pauses them (heartbeats
// blocked, computation continues — the GC-pause/stalled-host model), or
// partitions them (every coordinator call blocked — the network-split
// model). A Fleet supervises worker slots and respawns abnormal exits
// with fresh generation IDs, so a run always terminates: the
// coordinator's lease machinery reassigns orphaned shards and the final
// merged set must come out bit-identical to a single-process run.
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"storeatomicity/internal/dist"
	"storeatomicity/internal/obslog"
)

// Kind classifies one chaos event.
type Kind int

const (
	// Kill cancels the worker's context mid-run: the process-crash
	// model. The victim never posts its in-flight shard; lease expiry
	// hands the shard to a peer (or to the victim's respawn).
	Kill Kind = iota
	// Pause blocks the worker's heartbeats for Dur while computation
	// continues: the stalled-host model. The lease expires, the shard
	// is reassigned, and the victim's late completion must be absorbed
	// idempotently (first-wins).
	Pause
	// Partition blocks every coordinator call for Dur: the
	// network-split model, exercising the retry/backoff discipline.
	Partition
)

func (k Kind) String() string {
	switch k {
	case Kill:
		return "kill"
	case Pause:
		return "pause"
	case Partition:
		return "partition"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event schedules one fault: at offset At from fleet start, worker slot
// Worker suffers Kind (Pause/Partition last Dur).
type Event struct {
	At     time.Duration
	Worker int
	Kind   Kind
	Dur    time.Duration
}

// Plan is a seeded chaos schedule.
type Plan struct {
	Events []Event
}

// RandomPlan derives a reproducible schedule: roughly two events per
// worker spread over the horizon, kinds and victims drawn from the
// seeded generator.
func RandomPlan(seed int64, workers int, horizon time.Duration) Plan {
	rng := rand.New(rand.NewSource(seed))
	var p Plan
	n := 2 * workers
	for i := 0; i < n; i++ {
		p.Events = append(p.Events, Event{
			At:     time.Duration(rng.Int63n(int64(horizon))),
			Worker: rng.Intn(workers),
			Kind:   Kind(rng.Intn(3)),
			Dur:    horizon / 4,
		})
	}
	sort.Slice(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}

// Gate is an http.RoundTripper that can drop requests: all of them
// (Partition) or per-path (Pause blocks only the heartbeat path).
// Blocked requests fail immediately with a transport error, which the
// worker's retry/backoff treats as transient.
type Gate struct {
	next http.RoundTripper

	mu       sync.Mutex
	allUntil time.Time
	paths    map[string]time.Time
}

// NewGate wraps a transport (http.DefaultTransport when nil).
func NewGate(next http.RoundTripper) *Gate {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Gate{next: next, paths: map[string]time.Time{}}
}

// BlockAll drops every request until d from now has passed.
func (g *Gate) BlockAll(d time.Duration) {
	g.mu.Lock()
	g.allUntil = time.Now().Add(d)
	g.mu.Unlock()
}

// BlockPath drops requests for one URL path until d from now.
func (g *Gate) BlockPath(path string, d time.Duration) {
	g.mu.Lock()
	g.paths[path] = time.Now().Add(d)
	g.mu.Unlock()
}

// RoundTrip implements http.RoundTripper.
func (g *Gate) RoundTrip(req *http.Request) (*http.Response, error) {
	g.mu.Lock()
	now := time.Now()
	blocked := now.Before(g.allUntil) || now.Before(g.paths[req.URL.Path])
	g.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("chaos: %s blocked", req.URL.Path)
	}
	return g.next.RoundTrip(req)
}

// Fleet supervises worker slots under a chaos plan. Each slot runs a
// dist.Worker built from Base (ID and Client are overridden per
// generation); a slot whose worker exits abnormally — killed, or
// retries exhausted during a partition — respawns with a fresh
// generation ID until the coordinator reports done. Run returns when
// every slot has drained cleanly.
type Fleet struct {
	// Base is the worker template; Fleet overrides ID and Client.
	Base dist.WorkerConfig
	// Workers is the slot count.
	Workers int
	// Plan is the chaos schedule (empty = no faults).
	Plan Plan
	// Respawn is the delay before a dead slot restarts (default 20ms).
	Respawn time.Duration
	// Journal, when non-nil, records every injected fault and respawn —
	// the harness's own lane in the merged fleet timeline, so a test
	// failure (or a human reading a chaos run) can line injected cause
	// up against observed effect.
	Journal *obslog.Journal

	// Spawns counts worker generations started, Kills/Pauses/Partitions
	// the events applied — test observability.
	mu         sync.Mutex
	Spawns     int
	Applied    []string
	cancelCurr []context.CancelFunc
	gates      []*Gate
}

// Run executes the fleet under ctx. The returned error is ctx's, if it
// ended the run early; chaos-induced worker deaths are not errors.
func (f *Fleet) Run(ctx context.Context) error {
	if f.Workers <= 0 {
		f.Workers = 1
	}
	respawn := f.Respawn
	if respawn <= 0 {
		respawn = 20 * time.Millisecond
	}
	f.cancelCurr = make([]context.CancelFunc, f.Workers)
	f.gates = make([]*Gate, f.Workers)
	for i := range f.gates {
		f.gates[i] = NewGate(nil)
	}

	// The scheduler applies plan events relative to fleet start.
	schedCtx, schedCancel := context.WithCancel(ctx)
	var schedWG sync.WaitGroup
	schedWG.Add(1)
	go func() {
		defer schedWG.Done()
		start := time.Now()
		for _, ev := range f.Plan.Events {
			select {
			case <-schedCtx.Done():
				return
			case <-time.After(time.Until(start.Add(ev.At))):
			}
			f.apply(ev)
		}
	}()

	var wg sync.WaitGroup
	for slot := 0; slot < f.Workers; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for gen := 1; ; gen++ {
				if ctx.Err() != nil {
					return
				}
				wctx, cancel := context.WithCancel(ctx)
				f.mu.Lock()
				f.cancelCurr[slot] = cancel
				f.Spawns++
				f.mu.Unlock()
				cfg := f.Base
				cfg.ID = fmt.Sprintf("%s-w%dg%d", baseID(f.Base.ID), slot, gen)
				cfg.Seed = int64(slot*1000 + gen)
				cfg.Client = &http.Client{Transport: f.gates[slot], Timeout: 30 * time.Second}
				if gen > 1 {
					f.Journal.Emit(obslog.WorkerRespawned, obslog.Fields{
						Worker: cfg.ID, Attempt: gen,
					})
				}
				err := dist.NewWorker(cfg).Run(wctx)
				cancel()
				if err == nil {
					return // coordinator says done
				}
				select {
				case <-ctx.Done():
					return
				case <-time.After(respawn):
				}
			}
		}(slot)
	}
	wg.Wait()
	schedCancel()
	schedWG.Wait()
	return ctx.Err()
}

func baseID(id string) string {
	if id == "" {
		return "chaos"
	}
	return id
}

// apply executes one event against the current generation in the slot.
func (f *Fleet) apply(ev Event) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ev.Worker < 0 || ev.Worker >= len(f.gates) {
		return
	}
	f.Applied = append(f.Applied, fmt.Sprintf("%v@%v w%d", ev.Kind, ev.At.Round(time.Millisecond), ev.Worker))
	evType := map[Kind]obslog.Type{Kill: obslog.ChaosKill, Pause: obslog.ChaosPause, Partition: obslog.ChaosPartition}[ev.Kind]
	f.Journal.Emit(evType, obslog.Fields{
		Worker: fmt.Sprintf("w%d", ev.Worker), Ms: ev.Dur.Milliseconds(),
		Detail: ev.At.Round(time.Millisecond).String(),
	})
	switch ev.Kind {
	case Kill:
		if c := f.cancelCurr[ev.Worker]; c != nil {
			c()
		}
	case Pause:
		f.gates[ev.Worker].BlockPath(dist.PathHeartbeat, ev.Dur)
	case Partition:
		f.gates[ev.Worker].BlockAll(ev.Dur)
	}
}
