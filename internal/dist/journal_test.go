package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"storeatomicity/internal/obslog"
	"storeatomicity/internal/telemetry"
)

// scriptedIncident drives a coordinator plus two simulated workers
// through a fixed incident sequence — a worker goes silent mid-lease,
// its shard expires and is reassigned, the original holder completes
// late and wins, the reassignee's submission is rejected as a duplicate
// — entirely under a fake clock, with every process journaling. It
// returns the three journals merged into one timeline, plus the ledger
// snapshotted at the moment the silent worker was declared lost and at
// the end.
//
// The worker-side events are emitted by the test exactly where
// Worker.Run emits them (started before the shard, completed after,
// stamped with the lease's span ID); the protocol handlers and sweep
// are the real ones.
func scriptedIncident(t *testing.T) (merged []byte, mid, final StatusResponse) {
	t.Helper()
	clk := newFakeClock()
	var bufC, buf1, buf2 bytes.Buffer
	jC := obslog.NewWithOptions(obslog.Options{Out: &bufC, Source: "coord", Now: clk.now})
	j1 := obslog.NewWithOptions(obslog.Options{Out: &buf1, Source: "w1", Now: clk.now})
	j2 := obslog.NewWithOptions(obslog.Options{Out: &buf2, Source: "w2", Now: clk.now})

	// One clock drives the coordinator AND the journals, so timestamps —
	// and therefore the merge order — are fully scripted.
	cfg := Config{Lease: 10 * time.Second, Shards: 4, WorkerDeadline: -1, Journal: jC, Job: testJob()}
	cfg.now = clk.now
	c, err := NewCoordinator(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.shards) < 2 {
		t.Fatalf("partition produced %d shards; want >= 2", len(c.shards))
	}

	workers := map[string]*obslog.Journal{"w1": j1, "w2": j2}
	for _, id := range []string{"w1", "w2"} {
		reg, err := c.handleRegister(&RegisterRequest{Worker: id})
		if err != nil {
			t.Fatal(err)
		}
		if reg.RunID != c.RunID() {
			t.Fatalf("register handed run %q, coordinator owns %q", reg.RunID, c.RunID())
		}
		workers[id].SetRun(reg.RunID)
		workers[id].Emit(obslog.WorkerRegistered, obslog.Fields{Worker: id})
	}

	start := func(w string, l *LeaseResponse) {
		workers[w].EmitShard(obslog.ShardStarted, l.Shard, obslog.Fields{
			Worker: w, Span: l.SpanID, Attempt: l.Attempt,
		})
	}
	complete := func(w string, l *LeaseResponse) *CompleteResponse {
		req := runShardFor(t, c, w, l)
		req.SpanID = l.SpanID
		workers[w].EmitShard(obslog.ShardCompleted, l.Shard, obslog.Fields{
			Worker: w, Span: l.SpanID, Count: len(req.Completed), States: req.StatesExplored,
		})
		ack, err := c.handleComplete(req)
		if err != nil {
			t.Fatal(err)
		}
		return ack
	}

	// w1 takes the first shard and goes silent mid-lease.
	clk.advance(time.Second)
	l1 := lease(t, c, "w1")
	start("w1", l1)
	contested := l1.Shard

	// w2 drains every other shard cleanly.
	clk.advance(time.Second)
	for i := 0; i < len(c.shards)-1; i++ {
		l := lease(t, c, "w2")
		if l.Wait || l.Done {
			t.Fatalf("w2 starved on shard %d: %+v", i, l)
		}
		start("w2", l)
		clk.advance(100 * time.Millisecond)
		if ack := complete("w2", l); !ack.OK || ack.Duplicate {
			t.Fatalf("w2 completion rejected: %+v", ack)
		}
	}

	// w1 is now silent past the lease AND past the worker TTL: the first
	// sweep expires the lease (and classifies w1 missed), the next one
	// declares it lost.
	clk.advance(11 * time.Second)
	c.sweep(clk.now())
	clk.advance(100 * time.Millisecond)
	c.sweep(clk.now())
	mid = c.Status()

	// w2 picks the contested shard up (attempt 2)...
	l2 := lease(t, c, "w2")
	if l2.Shard != contested || l2.Attempt != 2 {
		t.Fatalf("reassignment leased shard %d attempt %d; want shard %d attempt 2",
			l2.Shard, l2.Attempt, contested)
	}
	start("w2", l2)

	// ...but w1 wakes up and submits first (first-wins), so w2's
	// submission bounces as a duplicate.
	clk.advance(time.Second)
	if ack := complete("w1", l1); !ack.OK || ack.Duplicate {
		t.Fatalf("w1's late completion not accepted first: %+v", ack)
	}
	clk.advance(time.Second)
	if ack := complete("w2", l2); !ack.Duplicate {
		t.Fatalf("w2's submission for the contested shard not marked duplicate: %+v", ack)
	}
	final = c.Status()

	out, err := obslog.MergeLines(&bufC, &buf1, &buf2)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	return bytes.Join(out, nil), mid, final
}

// TestJournalScriptedIncidentDeterministic runs the incident script
// twice from scratch and demands byte-identical merged journals — the
// determinism the fake clock, the per-journal sequence numbers, and the
// (time, src, seq) merge order exist to provide — then checks the
// timeline actually tells the incident's story and that the /status
// ledger agrees with it.
func TestJournalScriptedIncidentDeterministic(t *testing.T) {
	if !obslog.Enabled {
		t.Skip("journal compiled out (notelemetry)")
	}
	merged1, mid, final := scriptedIncident(t)
	merged2, _, _ := scriptedIncident(t)
	if !bytes.Equal(merged1, merged2) {
		t.Fatalf("two identical scripted runs merged to different journals:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", merged1, merged2)
	}

	for _, ev := range []obslog.Type{
		obslog.RunStarted, obslog.RunPartitioned, obslog.RunFinished,
		obslog.WorkerRegistered, obslog.WorkerHeartbeatMissed, obslog.WorkerLost,
		obslog.ShardLeased, obslog.ShardStarted, obslog.ShardCompleted,
		obslog.ShardLeaseExpired, obslog.ShardRequeued, obslog.ShardDuplicate,
	} {
		if !bytes.Contains(merged1, []byte(fmt.Sprintf("%q", string(ev)))) {
			t.Errorf("merged journal missing %s event", ev)
		}
	}

	// Mid-run ledger: the silent worker is lost, the contested shard is
	// back in the queue after one attempt, everything else is done.
	if w := workerRow(mid, "w1"); w == nil || w.State != "lost" {
		t.Errorf("mid-run ledger: w1 = %+v; want state lost", workerRow(mid, "w1"))
	}
	if mid.Pending != 1 || mid.Completed != mid.Shards-1 {
		t.Errorf("mid-run ledger: %d/%d done, %d pending; want all but the contested shard done",
			mid.Completed, mid.Shards, mid.Pending)
	}

	// Final ledger: done, every shard done, the contested shard fought
	// over twice, and the late submission revived w1.
	if !final.Done || final.Completed != final.Shards || final.DegradedReason != "" {
		t.Errorf("final ledger not a clean finish: %+v", final)
	}
	maxAttempts := 0
	for _, row := range final.ShardTable {
		if row.State != "done" {
			t.Errorf("final ledger: shard %d state %s; want done", row.ID, row.State)
		}
		if row.Attempts > maxAttempts {
			maxAttempts = row.Attempts
		}
	}
	if maxAttempts < 2 {
		t.Errorf("final ledger: max shard attempts %d; want >= 2 for the contested shard", maxAttempts)
	}
	if w := workerRow(final, "w1"); w == nil || w.State != "live" {
		t.Errorf("final ledger: w1 = %+v; want revived to live by its late submission", workerRow(final, "w1"))
	}

	// The journal's completion count must agree with the ledger: one
	// coordinator shard.completed per shard, duplicates excluded.
	coordCompleted := 0
	for _, line := range bytes.Split(merged1, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var e struct {
			Msg string `json:"msg"`
			Src string `json:"src"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("merged journal line not JSON: %q: %v", line, err)
		}
		if e.Src == "coord" && e.Msg == string(obslog.ShardCompleted) {
			coordCompleted++
		}
	}
	if coordCompleted != final.Completed {
		t.Errorf("journal records %d coordinator completions, ledger says %d", coordCompleted, final.Completed)
	}
}

func workerRow(st StatusResponse, id string) *WorkerLedger {
	for i := range st.WorkerTable {
		if st.WorkerTable[i].ID == id {
			return &st.WorkerTable[i]
		}
	}
	return nil
}

// TestObservabilityEndpoints runs a real coordinator + worker over HTTP
// and checks the three GET endpoints: /status serves the run ledger,
// /journal the NDJSON tail (every line stamped with the run ID), and
// /metrics the Prometheus exposition of the coordinator's registry.
func TestObservabilityEndpoints(t *testing.T) {
	if !telemetry.Enabled || !obslog.Enabled {
		t.Skip("telemetry compiled out")
	}
	var jbuf bytes.Buffer
	journal := obslog.New(&jbuf, "", "coord")
	reg := telemetry.NewRegistry()
	c, err := NewCoordinator(context.Background(), Config{
		Listen:         "127.0.0.1:0",
		Job:            testJob(),
		Shards:         4,
		WorkerDeadline: time.Minute,
		Metrics:        telemetry.NewDistMetrics(reg),
		Journal:        journal,
		Fleet:          telemetry.NewFleetMetrics(reg),
		Registry:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	w := NewWorker(WorkerConfig{Coord: "http://" + c.Addr(), ID: "w0"})
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if _, err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + c.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var st StatusResponse
	if err := json.Unmarshal(get(PathStatus), &st); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if !st.Done || st.RunID == "" || len(st.ShardTable) != st.Shards {
		t.Errorf("/status ledger incomplete: %+v", st)
	}
	if w := workerRow(st, "w0"); w == nil || w.ShardsDone != st.Completed {
		t.Errorf("/status worker row = %+v; want w0 credited with all %d completions", w, st.Completed)
	}

	lines := bytes.Split(bytes.TrimSpace(get(PathJournal+"?n=5")), []byte("\n"))
	if len(lines) == 0 || len(lines) > 5 {
		t.Fatalf("/journal?n=5 returned %d lines", len(lines))
	}
	for _, line := range lines {
		var e struct {
			Run string `json:"run"`
			Msg string `json:"msg"`
		}
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("/journal line not JSON: %q: %v", line, err)
		}
		if e.Run != st.RunID {
			t.Errorf("/journal line runs as %q, /status says %q", e.Run, st.RunID)
		}
	}

	metrics := string(get(PathMetrics))
	for _, want := range []string{"# TYPE dist_leases_granted_total counter", "dist_fleet_snapshot_workers"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestHeartbeatSnapshotAggregation: heartbeat-borne worker snapshots
// land in the worker ledger rows and are summed into the fleet gauges,
// and a worker declared lost stops contributing.
func TestHeartbeatSnapshotAggregation(t *testing.T) {
	if !telemetry.Enabled || !obslog.Enabled {
		t.Skip("telemetry compiled out")
	}
	reg := telemetry.NewRegistry()
	fleet := telemetry.NewFleetMetrics(reg)
	c, clk := newTestCoordinator(t, Config{
		Lease: 10 * time.Second, Shards: 4, WorkerDeadline: -1, Fleet: fleet,
	})
	for _, id := range []string{"w1", "w2"} {
		if _, err := c.handleRegister(&RegisterRequest{Worker: id}); err != nil {
			t.Fatal(err)
		}
	}
	hb := func(id string, explored, retries int64) {
		_, err := c.handleHeartbeat(&HeartbeatRequest{Worker: id, Metrics: telemetry.Snapshot{
			"enum_states_explored_total": explored,
			"dist_retries_total":         retries,
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	hb("w1", 100, 3)
	hb("w2", 40, 1)
	if got := reg.Snapshot()["dist_fleet_states_explored"]; got != 140 {
		t.Errorf("dist_fleet_states_explored = %d after two heartbeats; want 140", got)
	}
	if w := workerRow(c.Status(), "w1"); w == nil || w.Explored != 100 || w.Retries != 3 {
		t.Errorf("w1 ledger row = %+v; want explored 100, retries 3", w)
	}

	// w1 goes silent past the TTL: two sweeps classify it missed then
	// lost, and the aggregation drops to w2's contribution alone.
	clk.advance(7 * time.Second)
	hb("w2", 50, 1)
	clk.advance(4 * time.Second)
	c.sweep(clk.now())
	clk.advance(100 * time.Millisecond)
	c.sweep(clk.now())
	if w := workerRow(c.Status(), "w1"); w == nil || w.State != "lost" {
		t.Fatalf("w1 = %+v; want lost", w)
	}
	if got := reg.Snapshot()["dist_fleet_states_explored"]; got != 50 {
		t.Errorf("dist_fleet_states_explored = %d with w1 lost; want 50 (w2 only)", got)
	}
	if got := reg.Snapshot()["dist_fleet_snapshot_workers"]; got != 1 {
		t.Errorf("dist_fleet_snapshot_workers = %d with w1 lost; want 1", got)
	}
}
